"""The back-testing simulator (paper §IV-A).

Replays a :class:`~repro.sim.workload.QueryWorkload` against a system
profile and — for LightTrader — an accelerator cluster driven by the
selected scheduling scheme:

- **baseline**: FIFO, batch 1, the conservative static DVFS point of
  Table III, stale queries dropped at issue time;
- **WS**: Algorithm 1 picks (DVFS, batch) per issue by PPW under the
  static per-accelerator power share;
- **DS**: batch 1, but Algorithm 2 saves power on busy devices and
  greedily redistributes the shared budget;
- **WS+DS**: Algorithm 1 against the live rail headroom plus Algorithm 2
  redistribution.

GPU-based and FPGA-based systems run the same FIFO policy with their own
profiles, which is exactly the paper's non-batching comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import paperdata
from repro.accelerator.device import AcceleratorCluster, fastest_capped
from repro.accelerator.power import DVFSTable, OperatingPoint, PowerModel
from repro.baselines.profiles import LightTraderProfile, SystemProfile
from repro.core.dvfs import DVFSScheduler
from repro.core.scheduler import WorkloadScheduler
from repro.errors import SimulationError
from repro.faults.injector import DUPLICATE, STALLED, FaultInjector
from repro.faults.plan import (
    DEVICE_FAILURE,
    DEVICE_RECOVERY,
    DMA_STALL,
    QUERY_CORRUPTION,
    THERMAL_RELEASE,
    THERMAL_THROTTLE,
    FaultEvent,
    FaultPlan,
)
from repro.pipeline.offload import OffloadEngine, Query
from repro.sim.events import EventKind, EventQueue
from repro.sim.metrics import MetricsCollector, RunResult
from repro.sim.workload import QueryWorkload
from repro.telemetry import (
    Telemetry,
    completed_query_trace,
    dropped_query_trace,
    run_telemetry,
)


@dataclass(frozen=True)
class SimConfig:
    """Configuration of one LightTrader back-test run."""

    model: str = "vanilla_cnn"
    n_accelerators: int = 1
    power_condition: str = "sufficient"  # 'sufficient' (55 W) | 'limited' (20 W)
    workload_scheduling: bool = False
    dvfs_scheduling: bool = False
    max_batch: int = 16
    max_pending: int = 512
    scheduler_metric: str = "ppw"  # 'ppw' | 'latency' | 'throughput' (ablation)

    def __post_init__(self) -> None:
        if self.power_condition not in ("sufficient", "limited"):
            raise SimulationError(f"unknown power condition {self.power_condition!r}")
        if self.n_accelerators <= 0:
            raise SimulationError("need at least one accelerator")

    @property
    def budget_w(self) -> float:
        """Total accelerator power budget for this condition."""
        if self.power_condition == "sufficient":
            return paperdata.TABLE3_SUFFICIENT_TOTAL_W
        return paperdata.TABLE3_LIMITED_TOTAL_W

    @property
    def scheme(self) -> str:
        """Display name of the scheduling scheme."""
        if self.workload_scheduling and self.dvfs_scheduling:
            return "ws+ds"
        if self.workload_scheduling:
            return "ws"
        if self.dvfs_scheduling:
            return "ds"
        return "baseline"


@dataclass
class _Pending:
    """The offload queue plus bookkeeping shared by the event handlers."""

    offload: OffloadEngine
    metrics: MetricsCollector
    telemetry: Telemetry | None = None
    in_flight: dict[int, list[Query]] = field(default_factory=dict)
    injector: FaultInjector | None = None


class Backtester:
    """Replays one workload through one system configuration."""

    def __init__(
        self,
        workload: QueryWorkload,
        profile: SystemProfile,
        config: SimConfig | None = None,
        telemetry: Telemetry | None = None,
        faults: FaultPlan | None = None,
    ) -> None:
        self.workload = workload
        self.profile = profile
        self.config = config or SimConfig()
        self.telemetry = telemetry
        # An empty plan normalises to "no injection" so the fault-free
        # run stays bit-transparent: every fault branch below is guarded
        # by ``injector is not None``.
        self.faults = faults if faults is not None and not faults.empty else None
        self._is_lighttrader = isinstance(profile, LightTraderProfile)
        self.last_metrics: MetricsCollector | None = None

    # -- public -------------------------------------------------------------------

    def run(self) -> RunResult:
        """Execute the back-test and return its metrics digest.

        Telemetry: an explicit ``telemetry=`` handed to the constructor
        is used as-is (the caller closes it); otherwise, when
        ``REPRO_TRACE_DIR`` is set, a per-run JSONL trace is written
        there and closed automatically.  With neither, tracing is off
        and every hook degrades to an ``is None`` check.
        """
        config = self.config
        system = f"{self.profile.name}[{config.scheme}]"
        metrics = MetricsCollector(system=system, model=config.model)
        telemetry = self.telemetry
        owns_telemetry = False
        if telemetry is None:
            telemetry = run_telemetry(f"{system}-{config.model}")
            owns_telemetry = telemetry is not None
        if telemetry is not None:
            telemetry.record_run(
                self.profile.name,
                config.model,
                config.scheme,
                n_accelerators=config.n_accelerators,
                power_condition=config.power_condition,
            )
        injector = None
        if self.faults is not None:
            injector = FaultInjector(
                self.faults,
                config.n_accelerators,
                log=telemetry.decisions if telemetry is not None else None,
            )
        state = _Pending(
            offload=OffloadEngine(window=1, max_pending=config.max_pending),
            metrics=metrics,
            telemetry=telemetry,
            injector=injector,
        )
        queue = EventQueue()
        pre_ns = self.profile.stages.pre_inference_ns
        for index in range(len(self.workload)):
            ts = int(self.workload.timestamps[index])
            if injector is None:
                queue.push(ts + pre_ns, EventKind.ARRIVAL, index)
            else:
                for t in injector.arrival_times(index, ts + pre_ns):
                    queue.push(t, EventKind.ARRIVAL, index)
        if injector is not None:
            injector.schedule(queue)

        if self._is_lighttrader:
            self._run_lighttrader(queue, state)
        else:
            self._run_fixed_system(queue, state)

        for query in state.offload.pop_batch(config.max_pending):
            query.drop_reason = "end_of_run"
            self._record_drop(state, query, query.enqueue_time or query.arrival)
        self.last_metrics = metrics
        if owns_telemetry:
            telemetry.close()
        return metrics.result()

    # -- LightTrader path ------------------------------------------------------------

    def _run_lighttrader(self, queue: EventQueue, state: _Pending) -> None:
        assert isinstance(self.profile, LightTraderProfile)
        config = self.config
        profile = self.profile
        cost = profile.cost(config.model)

        static_table = DVFSTable(cap_hz=paperdata.TABLE3_CONSERVATIVE_CAP_HZ)
        dynamic_table = DVFSTable()  # full silicon envelope for Algorithms 1/2
        power_model: PowerModel = profile.power_model
        static_point = power_model.select_max_frequency(
            static_table,
            cost.activity,
            config.budget_w / config.n_accelerators,
        ) or static_table.min_point

        telemetry = state.telemetry
        decision_log = telemetry.decisions if telemetry is not None else None
        cluster = AcceleratorCluster(
            n_accelerators=config.n_accelerators,
            table=dynamic_table,
            power_model=power_model,
            budget_w=config.budget_w,
        )
        for device in cluster.devices:
            device.point = static_point  # boot-time configuration, no delay
            if telemetry is not None:
                device.on_transition = telemetry.record_transition

        ws = WorkloadScheduler(
            profile,
            dynamic_table,
            max_batch=config.max_batch,
            metric=config.scheduler_metric,
            log=decision_log,
        )
        ds = (
            DVFSScheduler(profile, dynamic_table, log=decision_log)
            if config.dvfs_scheduling
            else None
        )

        static_power = profile.power_w(config.model, static_point, 1)
        min_power = profile.power_w(config.model, dynamic_table.min_point, 1)

        post_slack_ns = profile.stages.post_inference_ns
        injector = state.injector

        def capped(point: OperatingPoint, device) -> OperatingPoint:
            """Clamp a chosen point to the device's thermal cap, if any."""
            if device.cap_hz is not None and point.freq_hz > device.cap_hz + 1e-3:
                return fastest_capped(dynamic_table, device.cap_hz)
            return point

        def decide_for(device, now: int, deadline: int):
            """One scheduling decision for an idle device, or None to drop."""
            if config.workload_scheduling:
                budget = self._issue_budget(cluster, device, now)
                if ds is not None and budget < min_power:
                    # Save power to make room for this issue (paper §III-D).
                    ds.reclaim(cluster, now, min_power - cluster.headroom(now))
                    budget = self._issue_budget(cluster, device, now)
                # Effective deadlines: the order must leave the trading
                # engine (post-inference stages) before t_avail expires.
                deadlines = [
                    d - post_slack_ns
                    for d in state.offload.pending_deadlines(config.max_batch)
                ]
                return ws.decide(
                    config.model,
                    now,
                    deadlines,
                    budget,
                    floor_freq_hz=static_point.freq_hz,
                    cap_freq_hz=device.cap_hz,
                )
            if ds is not None:
                # DVFS scheduling without batching: fastest point that the
                # live rail headroom admits (batch stays 1).
                budget = self._issue_budget(cluster, device, now)
                point = power_model.select_max_frequency(
                    dynamic_table, cost.activity, budget
                )
                if point is None:
                    ds.reclaim(cluster, now, static_power - cluster.headroom(now))
                    budget = self._issue_budget(cluster, device, now)
                    point = power_model.select_max_frequency(
                        dynamic_table, cost.activity, budget
                    )
                if point is None:
                    point = static_point  # worst-case-safe fallback
                return ws.static_decision(
                    config.model, capped(point, device), now, deadline
                )
            return ws.static_decision(
                config.model, capped(static_point, device), now, deadline
            )

        def try_schedule(now: int) -> None:
            self._drop_stale(state, now)
            for device in cluster.idle_devices(now):
                while state.offload.pending_count() > 0:
                    oldest = state.offload.peek_pending()
                    assert oldest is not None
                    deadline = oldest.deadline if oldest.deadline >= 0 else now
                    decision = decide_for(device, now, deadline)
                    if decision is None:
                        effective = deadline - post_slack_ns
                        if ws.deadline_feasible(config.model, now, effective):
                            # Only power stands in the way; keep the query
                            # queued until a busy accelerator releases
                            # budget (its completion re-triggers scheduling).
                            if decision_log is not None:
                                decision_log.record_fallback(
                                    now, "defer_power", oldest.query_id
                                )
                            break
                        victim = state.offload.drop_oldest()
                        if victim is not None:
                            if decision_log is not None:
                                decision_log.record_fallback(
                                    now, "drop_unschedulable", victim.query_id
                                )
                            self._record_drop(state, victim, now)
                        continue
                    if decision.point != device.point:
                        ready = device.set_point(decision.point, now)
                        queue.push(ready, EventKind.RETRY, None)
                        break
                    batch = state.offload.pop_batch(decision.batch_size)
                    record = device.issue(
                        now,
                        decision.t_total_ns,
                        len(batch),
                        cost.activity,
                        deadline_ns=deadline,
                    )
                    for query in batch:
                        query.issue_time = now
                    state.in_flight[device.accel_id] = batch
                    queue.push(record.completion_time, EventKind.COMPLETION, device.accel_id)
                    break  # this device is now busy; move to the next one
            if ds is not None:
                reserve = static_power if cluster.idle_devices(now) else 0.0
                if ds.redistribute(cluster, now, reserve_w=reserve):
                    for device in cluster.busy_devices(now):
                        queue.push(device.busy_until, EventKind.COMPLETION, device.accel_id)

        def surrender_batch(batch: "list[Query]", now: int, reason: str) -> tuple[int, int]:
            """Requeue a surrendered batch's live queries; drop the dead ones.

            A query is still live while its original deadline has not
            passed (``deadline > now``; negative deadlines never expire) —
            re-issue competes against the *original* deadline, never a
            fresh one.
            """
            alive = [q for q in batch if q.deadline < 0 or q.deadline > now]
            dead = [q for q in batch if not (q.deadline < 0 or q.deadline > now)]
            for query in alive:
                query.issue_time = None
            state.offload.requeue_front(alive)
            for victim in dead:
                victim.dropped = True
                victim.drop_reason = reason
                self._record_drop(state, victim, now)
            return len(alive), len(dead)

        def handle_fault(now: int, event: FaultEvent) -> None:
            assert injector is not None
            device = (
                cluster.devices[event.accel_id] if event.accel_id >= 0 else None
            )
            if event.kind == DEVICE_FAILURE:
                assert device is not None
                if not device.healthy:
                    return  # already quarantined by an earlier fault
                device.fail(now)
                injector.corrupted.discard(device.accel_id)
                batch = state.in_flight.pop(device.accel_id, [])
                requeued, dropped = surrender_batch(batch, now, "device_failure")
                if decision_log is not None:
                    decision_log.record_fault(
                        now,
                        DEVICE_FAILURE,
                        accel_id=device.accel_id,
                        requeued=requeued,
                        dropped=dropped,
                        survivors=cluster.n_healthy,
                    )
                if event.duration_ns > 0:
                    queue.push(
                        now + event.duration_ns,
                        EventKind.FAULT,
                        FaultEvent(
                            t_ns=now + event.duration_ns,
                            kind=DEVICE_RECOVERY,
                            accel_id=device.accel_id,
                        ),
                    )
            elif event.kind == DEVICE_RECOVERY:
                assert device is not None
                if device.healthy:
                    return
                device.recover(now, static_point)  # recover() clamps to any cap
                if decision_log is not None:
                    decision_log.record_fault(
                        now,
                        DEVICE_RECOVERY,
                        accel_id=device.accel_id,
                        survivors=cluster.n_healthy,
                    )
            elif event.kind == QUERY_CORRUPTION:
                assert device is not None
                if device.healthy and device.current is not None:
                    injector.corrupted.add(device.accel_id)
                    if decision_log is not None:
                        decision_log.record_fault(
                            now, QUERY_CORRUPTION, accel_id=device.accel_id
                        )
            elif event.kind == THERMAL_THROTTLE:
                assert device is not None
                cap = max(event.cap_hz, dynamic_table.min_point.freq_hz)
                device.throttle(cap)
                if decision_log is not None:
                    decision_log.record_fault(
                        now,
                        THERMAL_THROTTLE,
                        accel_id=device.accel_id,
                        cap_ghz=round(cap / 1e9, 3),
                    )
                if device.healthy and device.point.freq_hz > cap + 1e-3:
                    target = fastest_capped(dynamic_table, cap)
                    if device.is_idle(now):
                        ready = device.set_point(target, now, reason="thermal_throttle")
                        queue.push(ready, EventKind.RETRY, None)
                    else:
                        remaining = device.busy_until - now
                        stretched = round(
                            remaining * device.point.freq_hz / target.freq_hz
                        )
                        device.rescale_inflight(now, target, stretched)
                        queue.push(
                            device.busy_until, EventKind.COMPLETION, device.accel_id
                        )
                if event.duration_ns > 0:
                    queue.push(
                        now + event.duration_ns,
                        EventKind.FAULT,
                        FaultEvent(
                            t_ns=now + event.duration_ns,
                            kind=THERMAL_RELEASE,
                            accel_id=device.accel_id,
                        ),
                    )
            elif event.kind == THERMAL_RELEASE:
                assert device is not None
                if device.cap_hz is not None:
                    device.release_throttle()
                    if decision_log is not None:
                        decision_log.record_fault(
                            now, THERMAL_RELEASE, accel_id=device.accel_id
                        )
            elif event.kind == DMA_STALL:
                injector.begin_stall(now, event.duration_ns)
                if decision_log is not None:
                    decision_log.record_fault(
                        now, DMA_STALL, duration_ns=event.duration_ns
                    )

        post_ns = self.profile.stages.post_inference_ns
        while len(queue):
            now, kind, payload = queue.pop()
            if kind is EventKind.ARRIVAL:
                if injector is not None:
                    verdict = injector.on_arrival(payload, now)
                    if verdict == STALLED:
                        # DMA stall window: defer admission to its end.
                        queue.push(injector.stall_until, EventKind.ARRIVAL, payload)
                        continue
                    if verdict == DUPLICATE:
                        continue  # second copy of a duplicated packet
                self._ingest(state, payload, now)
                try_schedule(now)
            elif kind is EventKind.COMPLETION:
                device = cluster.devices[payload]
                if device.current is None:
                    continue  # stale event (batch already finished)
                if device.busy_until > now:
                    queue.push(device.busy_until, EventKind.COMPLETION, payload)
                    continue  # batch was stretched by the power-save step
                device.finish(now)
                batch = state.in_flight.pop(device.accel_id, [])
                if injector is not None and device.accel_id in injector.corrupted:
                    # The batch returned garbage: never score it; re-issue
                    # whatever can still meet its original deadline.
                    injector.corrupted.discard(device.accel_id)
                    requeued, dropped = surrender_batch(batch, now, "corrupt_result")
                    if decision_log is not None:
                        decision_log.record_fault(
                            now,
                            "corrupt_result",
                            accel_id=device.accel_id,
                            requeued=requeued,
                            dropped=dropped,
                        )
                    try_schedule(now)
                    continue
                for query in batch:
                    query.completion_time = now + post_ns
                    state.metrics.record_completion(
                        query, query.completion_time, len(batch)
                    )
                if telemetry is not None and batch:
                    trans_ns = profile.t_trans_ns(len(batch))
                    for query in batch:
                        telemetry.record_query(
                            completed_query_trace(
                                query,
                                profile.stages,
                                inference_done_ns=now,
                                t_trans_ns=trans_ns,
                                batch_size=len(batch),
                                accel_id=device.accel_id,
                            )
                        )
                try_schedule(now)
            elif kind is EventKind.FAULT:
                handle_fault(now, payload)
                try_schedule(now)
            else:  # RETRY
                try_schedule(now)
            watts = cluster.total_power(now)
            state.metrics.sample_power(now, watts)
            if telemetry is not None:
                telemetry.sample_power(now, watts)

    @staticmethod
    def _issue_budget(cluster, device, now) -> float:
        """Power available to a new issue on ``device``.

        Without DVFS scheduling each accelerator owns its static share;
        with it, an issue may consume the whole unused rail (the device's
        own idle draw is released when it goes active).
        """
        return cluster.headroom(now) + device.power_now(now)

    # -- fixed-profile (GPU / FPGA) path ----------------------------------------------

    def _run_fixed_system(self, queue: EventQueue, state: _Pending) -> None:
        config = self.config
        telemetry = state.telemetry
        decision_log = telemetry.decisions if telemetry is not None else None
        injector = state.injector
        busy_until = [0] * config.n_accelerators
        in_flight: dict[int, Query] = {}
        failed: set[int] = set()  # servers quarantined by a hard fault
        corrupt: set[int] = set()  # servers whose in-flight result is garbage
        post_ns = self.profile.stages.post_inference_ns
        t_total = self.profile.t_total_ns(config.model, None, 1)
        trans_ns = self.profile.t_trans_ns(1)

        def try_schedule(now: int) -> None:
            self._drop_stale(state, now)
            for server, free_at in enumerate(busy_until):
                if free_at > now or server in failed:
                    continue
                batch = state.offload.pop_batch(1)
                if not batch:
                    return
                query = batch[0]
                query.issue_time = now
                busy_until[server] = now + t_total
                in_flight[server] = query
                queue.push(busy_until[server], EventKind.COMPLETION, server)

        def surrender(server: int, now: int, reason: str) -> None:
            """Requeue or drop the query a faulted server was carrying."""
            query = in_flight.pop(server, None)
            if query is None:
                return
            if query.deadline < 0 or query.deadline > now:
                query.issue_time = None
                state.offload.requeue_front([query])
            else:
                query.dropped = True
                query.drop_reason = reason
                self._record_drop(state, query, now)

        def handle_fault(now: int, event: FaultEvent) -> None:
            assert injector is not None
            if event.kind == DEVICE_FAILURE:
                if event.accel_id in failed:
                    return
                failed.add(event.accel_id)
                corrupt.discard(event.accel_id)
                busy_until[event.accel_id] = now
                surrender(event.accel_id, now, "device_failure")
                if decision_log is not None:
                    decision_log.record_fault(
                        now,
                        DEVICE_FAILURE,
                        accel_id=event.accel_id,
                        survivors=config.n_accelerators - len(failed),
                    )
                if event.duration_ns > 0:
                    queue.push(
                        now + event.duration_ns,
                        EventKind.FAULT,
                        FaultEvent(
                            t_ns=now + event.duration_ns,
                            kind=DEVICE_RECOVERY,
                            accel_id=event.accel_id,
                        ),
                    )
            elif event.kind == DEVICE_RECOVERY:
                if event.accel_id in failed:
                    failed.discard(event.accel_id)
                    busy_until[event.accel_id] = now
                    if decision_log is not None:
                        decision_log.record_fault(
                            now,
                            DEVICE_RECOVERY,
                            accel_id=event.accel_id,
                            survivors=config.n_accelerators - len(failed),
                        )
            elif event.kind == QUERY_CORRUPTION:
                if event.accel_id in in_flight and event.accel_id not in failed:
                    corrupt.add(event.accel_id)
                    if decision_log is not None:
                        decision_log.record_fault(
                            now, QUERY_CORRUPTION, accel_id=event.accel_id
                        )
            elif event.kind == DMA_STALL:
                injector.begin_stall(now, event.duration_ns)
                if decision_log is not None:
                    decision_log.record_fault(
                        now, DMA_STALL, duration_ns=event.duration_ns
                    )
            # Thermal throttling is a no-op for fixed-frequency systems.

        while len(queue):
            now, kind, payload = queue.pop()
            if kind is EventKind.ARRIVAL:
                if injector is not None:
                    verdict = injector.on_arrival(payload, now)
                    if verdict == STALLED:
                        queue.push(injector.stall_until, EventKind.ARRIVAL, payload)
                        continue
                    if verdict == DUPLICATE:
                        continue
                self._ingest(state, payload, now)
            elif kind is EventKind.COMPLETION:
                if busy_until[payload] > now:
                    # Stale event: the server failed mid-flight and was
                    # re-issued; the real completion is queued separately.
                    pass
                else:
                    query = in_flight.pop(payload, None)
                    if query is None:
                        pass  # surrendered to a fault before completing
                    elif injector is not None and payload in corrupt:
                        corrupt.discard(payload)
                        if query.deadline < 0 or query.deadline > now:
                            query.issue_time = None
                            state.offload.requeue_front([query])
                        else:
                            query.dropped = True
                            query.drop_reason = "corrupt_result"
                            self._record_drop(state, query, now)
                        if decision_log is not None:
                            decision_log.record_fault(
                                now, "corrupt_result", accel_id=payload
                            )
                    else:
                        query.completion_time = now + post_ns
                        state.metrics.record_completion(
                            query, query.completion_time, 1
                        )
                        if telemetry is not None:
                            telemetry.record_query(
                                completed_query_trace(
                                    query,
                                    self.profile.stages,
                                    inference_done_ns=now,
                                    t_trans_ns=trans_ns,
                                    batch_size=1,
                                    accel_id=payload,
                                )
                            )
            elif kind is EventKind.FAULT:
                handle_fault(now, payload)
            try_schedule(now)
            state.metrics.sample_power(now, self.profile.system_power_w)
            if telemetry is not None:
                telemetry.sample_power(now, self.profile.system_power_w)

    # -- shared helpers ---------------------------------------------------------------

    def _ingest(self, state: _Pending, index: int, now: int) -> None:
        """Turn workload row ``index`` into a pending query at ``now``."""
        query = Query(
            query_id=index,
            tick_index=index,
            arrival=int(self.workload.timestamps[index]),
            deadline=int(self.workload.deadlines[index]),
            enqueue_time=now,
        )
        # Reuse the offload engine's queue/overflow machinery directly.
        engine = state.offload
        if engine.pending_count() >= engine.max_pending:
            victim = engine.drop_oldest()
            engine.dropped_unschedulable -= 1
            engine.dropped_overflow += 1
            if victim is not None:
                victim.drop_reason = "overflow"
                self._record_drop(state, victim, now)
        engine.admit(query)

    def _drop_stale(self, state: _Pending, now: int) -> None:
        for victim in state.offload.drop_stale(now):
            self._record_drop(state, victim, now)

    def _record_drop(self, state: _Pending, query: Query, now: int) -> None:
        """Score a drop and, when tracing, emit its truncated span trace."""
        state.metrics.record_drop(query)
        if state.telemetry is not None:
            state.telemetry.record_query(
                dropped_query_trace(query, self.profile.stages, drop_ns=now)
            )


def run_lighttrader(
    workload: QueryWorkload,
    config: SimConfig,
    profile: LightTraderProfile | None = None,
) -> RunResult:
    """Convenience wrapper for the common LightTrader case."""
    from repro.baselines.profiles import lighttrader_profile

    return Backtester(workload, profile or lighttrader_profile(), config).run()
