"""The back-testing simulator (paper §IV-A).

Replays a :class:`~repro.sim.workload.QueryWorkload` against a system
profile and — for LightTrader — an accelerator cluster driven by the
selected scheduling scheme:

- **baseline**: FIFO, batch 1, the conservative static DVFS point of
  Table III, stale queries dropped at issue time;
- **WS**: Algorithm 1 picks (DVFS, batch) per issue by PPW under the
  static per-accelerator power share;
- **DS**: batch 1, but Algorithm 2 saves power on busy devices and
  greedily redistributes the shared budget;
- **WS+DS**: Algorithm 1 against the live rail headroom plus Algorithm 2
  redistribution.

GPU-based and FPGA-based systems run the same FIFO policy with their own
profiles, which is exactly the paper's non-batching comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import paperdata
from repro.accelerator.device import AcceleratorCluster
from repro.accelerator.power import DVFSTable, OperatingPoint, PowerModel
from repro.baselines.profiles import LightTraderProfile, SystemProfile
from repro.core.dvfs import DVFSScheduler
from repro.core.scheduler import WorkloadScheduler
from repro.errors import SimulationError
from repro.pipeline.offload import OffloadEngine, Query
from repro.sim.events import EventKind, EventQueue
from repro.sim.metrics import MetricsCollector, RunResult
from repro.sim.workload import QueryWorkload
from repro.telemetry import (
    Telemetry,
    completed_query_trace,
    dropped_query_trace,
    run_telemetry,
)


@dataclass(frozen=True)
class SimConfig:
    """Configuration of one LightTrader back-test run."""

    model: str = "vanilla_cnn"
    n_accelerators: int = 1
    power_condition: str = "sufficient"  # 'sufficient' (55 W) | 'limited' (20 W)
    workload_scheduling: bool = False
    dvfs_scheduling: bool = False
    max_batch: int = 16
    max_pending: int = 512
    scheduler_metric: str = "ppw"  # 'ppw' | 'latency' | 'throughput' (ablation)

    def __post_init__(self) -> None:
        if self.power_condition not in ("sufficient", "limited"):
            raise SimulationError(f"unknown power condition {self.power_condition!r}")
        if self.n_accelerators <= 0:
            raise SimulationError("need at least one accelerator")

    @property
    def budget_w(self) -> float:
        """Total accelerator power budget for this condition."""
        if self.power_condition == "sufficient":
            return paperdata.TABLE3_SUFFICIENT_TOTAL_W
        return paperdata.TABLE3_LIMITED_TOTAL_W

    @property
    def scheme(self) -> str:
        """Display name of the scheduling scheme."""
        if self.workload_scheduling and self.dvfs_scheduling:
            return "ws+ds"
        if self.workload_scheduling:
            return "ws"
        if self.dvfs_scheduling:
            return "ds"
        return "baseline"


@dataclass
class _Pending:
    """The offload queue plus bookkeeping shared by the event handlers."""

    offload: OffloadEngine
    metrics: MetricsCollector
    telemetry: Telemetry | None = None
    in_flight: dict[int, list[Query]] = field(default_factory=dict)


class Backtester:
    """Replays one workload through one system configuration."""

    def __init__(
        self,
        workload: QueryWorkload,
        profile: SystemProfile,
        config: SimConfig | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.workload = workload
        self.profile = profile
        self.config = config or SimConfig()
        self.telemetry = telemetry
        self._is_lighttrader = isinstance(profile, LightTraderProfile)
        self.last_metrics: MetricsCollector | None = None

    # -- public -------------------------------------------------------------------

    def run(self) -> RunResult:
        """Execute the back-test and return its metrics digest.

        Telemetry: an explicit ``telemetry=`` handed to the constructor
        is used as-is (the caller closes it); otherwise, when
        ``REPRO_TRACE_DIR`` is set, a per-run JSONL trace is written
        there and closed automatically.  With neither, tracing is off
        and every hook degrades to an ``is None`` check.
        """
        config = self.config
        system = f"{self.profile.name}[{config.scheme}]"
        metrics = MetricsCollector(system=system, model=config.model)
        telemetry = self.telemetry
        owns_telemetry = False
        if telemetry is None:
            telemetry = run_telemetry(f"{system}-{config.model}")
            owns_telemetry = telemetry is not None
        if telemetry is not None:
            telemetry.record_run(
                self.profile.name,
                config.model,
                config.scheme,
                n_accelerators=config.n_accelerators,
                power_condition=config.power_condition,
            )
        state = _Pending(
            offload=OffloadEngine(window=1, max_pending=config.max_pending),
            metrics=metrics,
            telemetry=telemetry,
        )
        queue = EventQueue()
        pre_ns = self.profile.stages.pre_inference_ns
        for index in range(len(self.workload)):
            ts = int(self.workload.timestamps[index])
            queue.push(ts + pre_ns, EventKind.ARRIVAL, index)

        if self._is_lighttrader:
            self._run_lighttrader(queue, state)
        else:
            self._run_fixed_system(queue, state)

        for query in state.offload.pop_batch(config.max_pending):
            query.drop_reason = "end_of_run"
            self._record_drop(state, query, query.enqueue_time or query.arrival)
        self.last_metrics = metrics
        if owns_telemetry:
            telemetry.close()
        return metrics.result()

    # -- LightTrader path ------------------------------------------------------------

    def _run_lighttrader(self, queue: EventQueue, state: _Pending) -> None:
        assert isinstance(self.profile, LightTraderProfile)
        config = self.config
        profile = self.profile
        cost = profile.cost(config.model)

        static_table = DVFSTable(cap_hz=paperdata.TABLE3_CONSERVATIVE_CAP_HZ)
        dynamic_table = DVFSTable()  # full silicon envelope for Algorithms 1/2
        power_model: PowerModel = profile.power_model
        static_point = power_model.select_max_frequency(
            static_table,
            cost.activity,
            config.budget_w / config.n_accelerators,
        ) or static_table.min_point

        telemetry = state.telemetry
        decision_log = telemetry.decisions if telemetry is not None else None
        cluster = AcceleratorCluster(
            n_accelerators=config.n_accelerators,
            table=dynamic_table,
            power_model=power_model,
            budget_w=config.budget_w,
        )
        for device in cluster.devices:
            device.point = static_point  # boot-time configuration, no delay
            if telemetry is not None:
                device.on_transition = telemetry.record_transition

        ws = WorkloadScheduler(
            profile,
            dynamic_table,
            max_batch=config.max_batch,
            metric=config.scheduler_metric,
            log=decision_log,
        )
        ds = (
            DVFSScheduler(profile, dynamic_table, log=decision_log)
            if config.dvfs_scheduling
            else None
        )

        static_power = profile.power_w(config.model, static_point, 1)
        min_power = profile.power_w(config.model, dynamic_table.min_point, 1)

        post_slack_ns = profile.stages.post_inference_ns

        def decide_for(device, now: int, deadline: int):
            """One scheduling decision for an idle device, or None to drop."""
            if config.workload_scheduling:
                budget = self._issue_budget(cluster, device, now)
                if ds is not None and budget < min_power:
                    # Save power to make room for this issue (paper §III-D).
                    ds.reclaim(cluster, now, min_power - cluster.headroom(now))
                    budget = self._issue_budget(cluster, device, now)
                # Effective deadlines: the order must leave the trading
                # engine (post-inference stages) before t_avail expires.
                deadlines = [
                    d - post_slack_ns
                    for d in state.offload.pending_deadlines(config.max_batch)
                ]
                return ws.decide(
                    config.model,
                    now,
                    deadlines,
                    budget,
                    floor_freq_hz=static_point.freq_hz,
                )
            if ds is not None:
                # DVFS scheduling without batching: fastest point that the
                # live rail headroom admits (batch stays 1).
                budget = self._issue_budget(cluster, device, now)
                point = power_model.select_max_frequency(
                    dynamic_table, cost.activity, budget
                )
                if point is None:
                    ds.reclaim(cluster, now, static_power - cluster.headroom(now))
                    budget = self._issue_budget(cluster, device, now)
                    point = power_model.select_max_frequency(
                        dynamic_table, cost.activity, budget
                    )
                if point is None:
                    point = static_point  # worst-case-safe fallback
                return ws.static_decision(config.model, point, now, deadline)
            return ws.static_decision(config.model, static_point, now, deadline)

        def try_schedule(now: int) -> None:
            self._drop_stale(state, now)
            for device in cluster.idle_devices(now):
                while state.offload.pending_count() > 0:
                    oldest = state.offload.peek_pending()
                    assert oldest is not None
                    deadline = oldest.deadline if oldest.deadline >= 0 else now
                    decision = decide_for(device, now, deadline)
                    if decision is None:
                        effective = deadline - post_slack_ns
                        if ws.deadline_feasible(config.model, now, effective):
                            # Only power stands in the way; keep the query
                            # queued until a busy accelerator releases
                            # budget (its completion re-triggers scheduling).
                            if decision_log is not None:
                                decision_log.record_fallback(
                                    now, "defer_power", oldest.query_id
                                )
                            break
                        victim = state.offload.drop_oldest()
                        if victim is not None:
                            if decision_log is not None:
                                decision_log.record_fallback(
                                    now, "drop_unschedulable", victim.query_id
                                )
                            self._record_drop(state, victim, now)
                        continue
                    if decision.point != device.point:
                        ready = device.set_point(decision.point, now)
                        queue.push(ready, EventKind.RETRY, None)
                        break
                    batch = state.offload.pop_batch(decision.batch_size)
                    record = device.issue(
                        now,
                        decision.t_total_ns,
                        len(batch),
                        cost.activity,
                        deadline_ns=deadline,
                    )
                    for query in batch:
                        query.issue_time = now
                    state.in_flight[device.accel_id] = batch
                    queue.push(record.completion_time, EventKind.COMPLETION, device.accel_id)
                    break  # this device is now busy; move to the next one
            if ds is not None:
                reserve = static_power if cluster.idle_devices(now) else 0.0
                if ds.redistribute(cluster, now, reserve_w=reserve):
                    for device in cluster.busy_devices(now):
                        queue.push(device.busy_until, EventKind.COMPLETION, device.accel_id)

        post_ns = self.profile.stages.post_inference_ns
        while len(queue):
            now, kind, payload = queue.pop()
            if kind is EventKind.ARRIVAL:
                self._ingest(state, payload, now)
                try_schedule(now)
            elif kind is EventKind.COMPLETION:
                device = cluster.devices[payload]
                if device.current is None:
                    continue  # stale event (batch already finished)
                if device.busy_until > now:
                    queue.push(device.busy_until, EventKind.COMPLETION, payload)
                    continue  # batch was stretched by the power-save step
                device.finish(now)
                batch = state.in_flight.pop(device.accel_id, [])
                for query in batch:
                    query.completion_time = now + post_ns
                    state.metrics.record_completion(
                        query, query.completion_time, len(batch)
                    )
                if telemetry is not None and batch:
                    trans_ns = profile.t_trans_ns(len(batch))
                    for query in batch:
                        telemetry.record_query(
                            completed_query_trace(
                                query,
                                profile.stages,
                                inference_done_ns=now,
                                t_trans_ns=trans_ns,
                                batch_size=len(batch),
                                accel_id=device.accel_id,
                            )
                        )
                try_schedule(now)
            else:  # RETRY
                try_schedule(now)
            watts = cluster.total_power(now)
            state.metrics.sample_power(now, watts)
            if telemetry is not None:
                telemetry.sample_power(now, watts)

    @staticmethod
    def _issue_budget(cluster, device, now) -> float:
        """Power available to a new issue on ``device``.

        Without DVFS scheduling each accelerator owns its static share;
        with it, an issue may consume the whole unused rail (the device's
        own idle draw is released when it goes active).
        """
        return cluster.headroom(now) + device.power_now(now)

    # -- fixed-profile (GPU / FPGA) path ----------------------------------------------

    def _run_fixed_system(self, queue: EventQueue, state: _Pending) -> None:
        config = self.config
        telemetry = state.telemetry
        busy_until = [0] * config.n_accelerators
        in_flight: dict[int, Query] = {}
        post_ns = self.profile.stages.post_inference_ns
        t_total = self.profile.t_total_ns(config.model, None, 1)
        trans_ns = self.profile.t_trans_ns(1)

        def try_schedule(now: int) -> None:
            self._drop_stale(state, now)
            for server, free_at in enumerate(busy_until):
                if free_at > now:
                    continue
                batch = state.offload.pop_batch(1)
                if not batch:
                    return
                query = batch[0]
                query.issue_time = now
                busy_until[server] = now + t_total
                in_flight[server] = query
                queue.push(busy_until[server], EventKind.COMPLETION, server)

        while len(queue):
            now, kind, payload = queue.pop()
            if kind is EventKind.ARRIVAL:
                self._ingest(state, payload, now)
            elif kind is EventKind.COMPLETION:
                query = in_flight.pop(payload)
                query.completion_time = now + post_ns
                state.metrics.record_completion(query, query.completion_time, 1)
                if telemetry is not None:
                    telemetry.record_query(
                        completed_query_trace(
                            query,
                            self.profile.stages,
                            inference_done_ns=now,
                            t_trans_ns=trans_ns,
                            batch_size=1,
                            accel_id=payload,
                        )
                    )
            try_schedule(now)
            state.metrics.sample_power(now, self.profile.system_power_w)
            if telemetry is not None:
                telemetry.sample_power(now, self.profile.system_power_w)

    # -- shared helpers ---------------------------------------------------------------

    def _ingest(self, state: _Pending, index: int, now: int) -> None:
        """Turn workload row ``index`` into a pending query at ``now``."""
        query = Query(
            query_id=index,
            tick_index=index,
            arrival=int(self.workload.timestamps[index]),
            deadline=int(self.workload.deadlines[index]),
            enqueue_time=now,
        )
        # Reuse the offload engine's queue/overflow machinery directly.
        engine = state.offload
        if engine.pending_count() >= engine.max_pending:
            victim = engine.drop_oldest()
            engine.dropped_unschedulable -= 1
            engine.dropped_overflow += 1
            if victim is not None:
                victim.drop_reason = "overflow"
                self._record_drop(state, victim, now)
        engine.admit(query)

    def _drop_stale(self, state: _Pending, now: int) -> None:
        for victim in state.offload.drop_stale(now):
            self._record_drop(state, victim, now)

    def _record_drop(self, state: _Pending, query: Query, now: int) -> None:
        """Score a drop and, when tracing, emit its truncated span trace."""
        state.metrics.record_drop(query)
        if state.telemetry is not None:
            state.telemetry.record_query(
                dropped_query_trace(query, self.profile.stages, drop_ns=now)
            )


def run_lighttrader(
    workload: QueryWorkload,
    config: SimConfig,
    profile: LightTraderProfile | None = None,
) -> RunResult:
    """Convenience wrapper for the common LightTrader case."""
    from repro.baselines.profiles import lighttrader_profile

    return Backtester(workload, profile or lighttrader_profile(), config).run()
