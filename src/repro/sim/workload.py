"""Query workloads: the tick streams the back-tester replays.

A :class:`QueryWorkload` is the minimal back-testing input — arrival
timestamps and per-query deadlines — with two constructors:

- :func:`QueryWorkload.from_tape` derives both from a recorded
  :class:`~repro.market.replay.TickTape` using a deadline policy.
- :func:`synthetic_workload` samples a regime-switching arrival process
  (calm / active / burst) that reproduces the clustered traffic shape of
  real tick feeds without paying for full matching-engine simulation —
  the tool for large parameter sweeps.

Deadline policies implement the paper's ``t_avail``: *horizon* deadlines
tie validity to the arrival of the tick ``horizon`` steps later (the
prediction-horizon semantics — bursts compress the available time
exactly when load peaks), while *fixed* deadlines grant a constant
budget.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.market.replay import TickTape
from repro.units import sec_to_ns


class DeadlinePolicy(abc.ABC):
    """Maps tick index/timestamps to a completion deadline."""

    @abc.abstractmethod
    def deadlines(self, timestamps: np.ndarray) -> np.ndarray:
        """Deadline per tick; entries may be -1 for 'unknowable' (tail)."""


@dataclass(frozen=True)
class HorizonDeadline(DeadlinePolicy):
    """Deadline = arrival time of the tick ``horizon`` steps later."""

    horizon: int = 100

    def deadlines(self, timestamps):
        if self.horizon <= 0:
            raise SimulationError("horizon must be positive")
        out = np.full(len(timestamps), -1, dtype=np.int64)
        if len(timestamps) > self.horizon:
            out[: -self.horizon] = timestamps[self.horizon :]
        return out


@dataclass(frozen=True)
class FixedDeadline(DeadlinePolicy):
    """Deadline = arrival + a constant budget."""

    budget_ns: int = 5_000_000  # 5 ms

    def deadlines(self, timestamps):
        if self.budget_ns <= 0:
            raise SimulationError("deadline budget must be positive")
        return timestamps + self.budget_ns


@dataclass(frozen=True)
class OpportunityDeadline(DeadlinePolicy):
    """Deadline = arrival + a heavy-tailed opportunity lifetime.

    HFT profit opportunities have widely varying lifetimes — most vanish
    within milliseconds, some persist much longer ("there is a
    probability that the profit opportunity vanishes even before the
    prediction horizon ends", paper §II-C).  A lognormal lifetime with a
    large σ captures this: the median sets the typical t_avail; the heavy
    upper tail means queued work during bursts is not automatically
    doomed, while the lower tail makes *intrinsic* inference latency
    matter — which is exactly what ties response rates to the DVFS
    operating point and gives the schedulers their leverage.

    This is the default deadline policy for every headline experiment;
    the parameters are part of the workload calibration (EXPERIMENTS.md).
    """

    median_ns: int = 27_800_000  # 27.8 ms median opportunity lifetime
    sigma: float = 1.94
    seed: int = 1234

    def deadlines(self, timestamps):
        if self.median_ns <= 0 or self.sigma <= 0:
            raise SimulationError("median and sigma must be positive")
        rng = np.random.default_rng(self.seed)
        lifetimes = rng.lognormal(
            mean=np.log(self.median_ns), sigma=self.sigma, size=len(timestamps)
        )
        return timestamps + lifetimes.astype(np.int64)


@dataclass(frozen=True)
class QueryWorkload:
    """Arrival timestamps + deadlines for one back-test run.

    ``regimes`` optionally tags each query with the traffic regime that
    produced it (diagnostics only; the simulator never reads it).
    """

    timestamps: np.ndarray  # int64 ns, sorted
    deadlines: np.ndarray  # int64 ns; -1 marks unscored tail queries
    name: str = "workload"
    regimes: np.ndarray | None = None

    def __post_init__(self) -> None:
        if len(self.timestamps) != len(self.deadlines):
            raise SimulationError("timestamps and deadlines must align")
        if self.regimes is not None and len(self.regimes) != len(self.timestamps):
            raise SimulationError("regimes must align with timestamps")
        if len(self.timestamps) and (np.diff(self.timestamps) < 0).any():
            raise SimulationError("workload timestamps must be sorted")

    def __len__(self) -> int:
        return len(self.timestamps)

    @property
    def scored_count(self) -> int:
        """Queries with a known deadline (the denominator of miss rates)."""
        return int((self.deadlines >= 0).sum())

    @classmethod
    def from_tape(
        cls,
        tape: TickTape,
        policy: DeadlinePolicy | None = None,
        name: str | None = None,
    ) -> "QueryWorkload":
        """Derive a workload from a recorded tape."""
        policy = policy or HorizonDeadline()
        timestamps = tape.timestamps
        return cls(
            timestamps=timestamps,
            deadlines=policy.deadlines(timestamps),
            name=name or "tape",
        )


# --- regime-switching synthetic traffic ---------------------------------------


@dataclass(frozen=True)
class Regime:
    """One traffic state: Poisson arrivals at ``rate_hz`` for an
    exponentially distributed dwell of mean ``mean_dwell_s``."""

    name: str
    rate_hz: float
    mean_dwell_s: float

    def __post_init__(self) -> None:
        if self.rate_hz <= 0 or self.mean_dwell_s <= 0:
            raise SimulationError(f"regime {self.name}: rate and dwell must be positive")


@dataclass(frozen=True)
class TrafficSpec:
    """Calm baseline punctuated by episodic rate regimes.

    The process alternates calm ↔ episode: every departure from CALM
    samples one episode regime by weight, runs Poisson arrivals through
    its dwell, then returns to CALM — the episodic structure real tick
    feeds exhibit (quiet tape, activity clusters, micro-bursts).

    The default parameters are calibrated (see EXPERIMENTS.md) so that a
    single-accelerator LightTrader, the GPU-based and the FPGA-based
    systems land on the paper's Fig.-11 response rates: an *elevated*
    tier that only the slow baselines fail, an *active* tier between the
    TransLOB and vanilla-CNN service capacities, and micro-*bursts* that
    degrade every system in proportion to its throughput.
    """

    calm: Regime = Regime("calm", rate_hz=160.0, mean_dwell_s=5.1)
    episodes: tuple[Regime, ...] = (
        Regime("elevated", rate_hz=2_000.0, mean_dwell_s=0.050),
        Regime("active", rate_hz=7_600.0, mean_dwell_s=0.060),
        Regime("burst", rate_hz=50_000.0, mean_dwell_s=0.012),
    )
    episode_weights: tuple[float, ...] = (0.557, 0.232, 0.212)

    def __post_init__(self) -> None:
        if len(self.episodes) != len(self.episode_weights):
            raise SimulationError("episodes and episode_weights must align")
        if not self.episodes:
            raise SimulationError("need at least one episode regime")
        if any(w < 0 for w in self.episode_weights) or sum(self.episode_weights) <= 0:
            raise SimulationError("episode weights must be non-negative, sum > 0")


DEFAULT_TRAFFIC = TrafficSpec()


def synthetic_workload(
    duration_s: float,
    spec: TrafficSpec = DEFAULT_TRAFFIC,
    policy: DeadlinePolicy | None = None,
    seed: int = 0,
    name: str = "synthetic",
) -> QueryWorkload:
    """Sample a regime-switching workload of ``duration_s`` seconds."""
    if duration_s <= 0:
        raise SimulationError("duration must be positive")
    rng = np.random.default_rng(seed)
    policy = policy or OpportunityDeadline()
    horizon_ns = sec_to_ns(duration_s)
    weights = np.asarray(spec.episode_weights, dtype=float)
    weights /= weights.sum()
    times: list[int] = []
    regimes: list[str] = []
    t = 0.0
    state = spec.calm
    while True:
        dwell = rng.exponential(state.mean_dwell_s)
        end = t + dwell
        # Poisson arrivals within this dwell.
        t_event = t
        while True:
            t_event += rng.exponential(1.0 / state.rate_hz)
            if t_event >= end:
                break
            stamp = round(t_event * 1e9)
            if stamp >= horizon_ns:
                break
            times.append(stamp)
            regimes.append(state.name)
        t = end
        if t * 1e9 >= horizon_ns:
            break
        if state is spec.calm:
            state = spec.episodes[int(rng.choice(len(spec.episodes), p=weights))]
        else:
            state = spec.calm
    timestamps = np.asarray(times, dtype=np.int64)
    return QueryWorkload(
        timestamps=timestamps,
        deadlines=policy.deadlines(timestamps),
        name=name,
        regimes=np.asarray(regimes),
    )
