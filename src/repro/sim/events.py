"""Deterministic discrete-event core.

A tiny priority-queue event engine: events fire in (time, kind priority,
insertion order) order, so identical runs replay identically.  Times are
integer nanoseconds throughout.
"""

from __future__ import annotations

import enum
import heapq
from dataclasses import dataclass, field
from typing import Any

from repro.errors import SimulationError


class EventKind(enum.IntEnum):
    """Event types, ordered by processing priority at equal timestamps.

    Completions process before arrivals at the same instant so a device
    freed at time t can serve a query arriving at t.
    """

    COMPLETION = 0
    RETRY = 1
    ARRIVAL = 2


@dataclass(order=True)
class _Entry:
    time: int
    kind_priority: int
    seq: int
    kind: EventKind = field(compare=False)
    payload: Any = field(compare=False)


class EventQueue:
    """Min-heap of timestamped events with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[_Entry] = []
        self._seq = 0
        self._now = 0

    @property
    def now(self) -> int:
        """Time of the most recently popped event."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: int, kind: EventKind, payload: Any = None) -> None:
        """Schedule an event; scheduling into the past is an error."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule {kind.name} at {time} before now ({self._now})"
            )
        self._seq += 1
        heapq.heappush(self._heap, _Entry(time, int(kind), self._seq, kind, payload))

    def pop(self) -> tuple[int, EventKind, Any]:
        """Remove and return the next (time, kind, payload)."""
        if not self._heap:
            raise SimulationError("pop from empty event queue")
        entry = heapq.heappop(self._heap)
        self._now = entry.time
        return entry.time, entry.kind, entry.payload

    def peek_time(self) -> int | None:
        """Timestamp of the next event, or None when empty."""
        return self._heap[0].time if self._heap else None
