"""Deterministic discrete-event core.

A tiny priority-queue event engine: events fire in (time, kind priority,
insertion order) order, so identical runs replay identically.  Times are
integer nanoseconds throughout.
"""

from __future__ import annotations

import enum
import heapq
from typing import Any

from repro.errors import SimulationError


class EventKind(enum.IntEnum):
    """Event types, ordered by processing priority at equal timestamps.

    Completions process before arrivals at the same instant so a device
    freed at time t can serve a query arriving at t.  Faults land after
    completions and retries but before arrivals: a batch that finishes
    at the very instant its device fails still counts (the result is
    already on the wire), while a query arriving at the fault instant
    sees the degraded cluster.
    """

    COMPLETION = 0
    RETRY = 1
    FAULT = 2
    ARRIVAL = 3


class EventQueue:
    """Min-heap of timestamped events with deterministic tie-breaking.

    Entries are plain tuples ``(time, kind_priority, seq, kind, payload)``
    so heap sifting compares in C; ``seq`` is unique, so comparison never
    reaches the (possibly incomparable) kind/payload slots.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, int, EventKind, Any]] = []
        self._seq = 0
        self._now = 0

    @property
    def now(self) -> int:
        """Time of the most recently popped event."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: int, kind: EventKind, payload: Any = None) -> None:
        """Schedule an event; scheduling into the past is an error."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule {kind.name} at {time} before now ({self._now})"
            )
        self._seq += 1
        heapq.heappush(self._heap, (time, int(kind), self._seq, kind, payload))

    def pop(self) -> tuple[int, EventKind, Any]:
        """Remove and return the next (time, kind, payload)."""
        if not self._heap:
            raise SimulationError("pop from empty event queue")
        time, _, _, kind, payload = heapq.heappop(self._heap)
        self._now = time
        return time, kind, payload

    def peek_time(self) -> int | None:
        """Timestamp of the next event, or None when empty."""
        return self._heap[0][0] if self._heap else None

    def peek(self) -> tuple[int, int] | None:
        """(time, kind priority) of the next event without popping.

        The fast simulator loop merges this heap against its sorted
        arrival stream; the kind priority decides ties exactly as
        :meth:`pop` would (heap events with kind < ARRIVAL precede
        same-instant stream arrivals, heap ARRIVAL re-pushes — always
        later insertions than the stream — yield to it).
        """
        if not self._heap:
            return None
        entry = self._heap[0]
        return entry[0], entry[1]
