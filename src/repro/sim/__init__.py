"""Discrete-event back-testing framework."""

from repro.sim.backtest import Backtester, SimConfig, run_lighttrader
from repro.sim.events import EventKind, EventQueue
from repro.sim.metrics import MetricsCollector, RunResult
from repro.sim.workload import (
    DEFAULT_TRAFFIC,
    DeadlinePolicy,
    FixedDeadline,
    HorizonDeadline,
    OpportunityDeadline,
    QueryWorkload,
    Regime,
    TrafficSpec,
    synthetic_workload,
)
from repro.sim.workload_cache import (
    WORKLOAD_CACHE_ENV,
    cached_synthetic_workload,
    clear_workload_cache,
)

__all__ = [
    "Backtester",
    "DEFAULT_TRAFFIC",
    "DeadlinePolicy",
    "EventKind",
    "EventQueue",
    "FixedDeadline",
    "HorizonDeadline",
    "MetricsCollector",
    "OpportunityDeadline",
    "QueryWorkload",
    "Regime",
    "RunResult",
    "SimConfig",
    "SimulationError",
    "TrafficSpec",
    "WORKLOAD_CACHE_ENV",
    "cached_synthetic_workload",
    "clear_workload_cache",
    "run_lighttrader",
    "synthetic_workload",
]

from repro.errors import SimulationError  # noqa: E402  (re-export for convenience)
