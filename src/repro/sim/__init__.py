"""Discrete-event back-testing framework."""

from repro.sim.backtest import Backtester, SimConfig, run_lighttrader
from repro.sim.events import EventKind, EventQueue
from repro.sim.metrics import MetricsCollector, RunResult
from repro.sim.workload import (
    DEFAULT_TRAFFIC,
    DeadlinePolicy,
    FixedDeadline,
    HorizonDeadline,
    OpportunityDeadline,
    QueryWorkload,
    Regime,
    TrafficSpec,
    synthetic_workload,
)

__all__ = [
    "Backtester",
    "DEFAULT_TRAFFIC",
    "DeadlinePolicy",
    "EventKind",
    "EventQueue",
    "FixedDeadline",
    "HorizonDeadline",
    "MetricsCollector",
    "OpportunityDeadline",
    "QueryWorkload",
    "Regime",
    "RunResult",
    "SimConfig",
    "SimulationError",
    "TrafficSpec",
    "run_lighttrader",
    "synthetic_workload",
]

from repro.errors import SimulationError  # noqa: E402  (re-export for convenience)
