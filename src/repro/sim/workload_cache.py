"""Keyed caching for synthetic workloads.

Every figure driver replays the same calibrated traffic: regenerating the
regime-switching arrival process (and its deadline draws) per driver is
pure waste, and at EXPERIMENTS.md durations it costs seconds per call.
This module memoises :func:`~repro.sim.workload.synthetic_workload` by
its full parameterisation:

- **in-memory** (always on): one process builds each distinct workload
  once, however many figures or schemes replay it;
- **on-disk** (opt-in): set ``REPRO_WORKLOAD_CACHE`` to a directory and
  workloads persist across processes as ``.npz`` files — parallel
  experiment workers and repeated benchmark invocations then skip the
  generator entirely.

Keys cover duration, traffic spec, deadline policy, seed and name (all
frozen dataclasses with deterministic reprs), so a cache hit is
guaranteed to be the byte-identical workload the generator would have
produced.  :class:`~repro.sim.workload.QueryWorkload` is immutable, so
sharing one instance between runs is safe.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from pathlib import Path

import numpy as np

from repro import envcfg
from repro.sim.workload import (
    DEFAULT_TRAFFIC,
    DeadlinePolicy,
    OpportunityDeadline,
    QueryWorkload,
    TrafficSpec,
    synthetic_workload,
)

__all__ = [
    "WORKLOAD_CACHE_ENV",
    "cached_synthetic_workload",
    "clear_workload_cache",
    "workload_cache_dir",
    "workload_cache_key",
]

WORKLOAD_CACHE_ENV = envcfg.WORKLOAD_CACHE.name

# Bump whenever a generator's RNG stream changes (e.g. the vectorized
# Hawkes thinning loop consumes draws in a different order than the
# scalar sampler did) so stale on-disk entries can never shadow the
# regenerated workload.
_GENERATOR_VERSION = 2

_memory: dict[str, QueryWorkload] = {}


def workload_cache_dir() -> Path | None:
    """The on-disk cache directory, or None when disk caching is off."""
    value = envcfg.get_path(WORKLOAD_CACHE_ENV)
    return Path(value) if value else None


def clear_workload_cache() -> None:
    """Drop the in-memory cache (on-disk files are left alone)."""
    _memory.clear()


def workload_cache_key(
    duration_s: float,
    spec: TrafficSpec,
    policy: DeadlinePolicy,
    seed: int,
    name: str,
) -> str:
    """Stable digest of one synthetic-workload parameterisation."""
    descriptor = repr(
        (_GENERATOR_VERSION, float(duration_s), spec, policy, int(seed), str(name))
    )
    return hashlib.sha256(descriptor.encode()).hexdigest()[:24]


def cached_synthetic_workload(
    duration_s: float,
    spec: TrafficSpec = DEFAULT_TRAFFIC,
    policy: DeadlinePolicy | None = None,
    seed: int = 0,
    name: str = "synthetic",
) -> QueryWorkload:
    """:func:`synthetic_workload` behind the two-level cache."""
    policy = policy or OpportunityDeadline()
    key = workload_cache_key(duration_s, spec, policy, seed, name)
    workload = _memory.get(key)
    if workload is None:
        workload = _load(key, name)
        if workload is None:
            workload = synthetic_workload(duration_s, spec, policy, seed, name)
            _store(key, workload)
        _memory[key] = workload
    return workload


def _path(key: str, name: str) -> Path | None:
    directory = workload_cache_dir()
    if directory is None:
        return None
    return directory / f"{name}-{key}.npz"


def _load(key: str, name: str) -> QueryWorkload | None:
    path = _path(key, name)
    if path is None or not path.exists():
        return None
    try:
        with np.load(path, allow_pickle=False) as data:
            regimes = data["regimes"] if "regimes" in data else None
            return QueryWorkload(
                timestamps=data["timestamps"],
                deadlines=data["deadlines"],
                name=name,
                regimes=regimes,
            )
    except (OSError, KeyError, ValueError):
        return None  # corrupt/partial entry: fall back to regeneration


def _store(key: str, workload: QueryWorkload) -> None:
    path = _path(key, workload.name)
    if path is None:
        return
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays = {"timestamps": workload.timestamps, "deadlines": workload.deadlines}
    if workload.regimes is not None:
        arrays["regimes"] = workload.regimes
    # Write-then-rename so concurrent workers never observe a torn file.
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(handle, **arrays)
        os.replace(tmp_name, path)
    except OSError:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
