"""Back-test metrics: response rate, miss rate, latency and power stats.

The simulation framework "tracks each input query to see if its
tick-to-trade meets the available time and stores the result for the
record" (paper §IV-A).  :class:`MetricsCollector` is that record keeper;
:class:`RunResult` is the digest every experiment consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.metrics import MetricRegistry, NULL_METRICS
from repro.pipeline.offload import Query


def _fmt_us(value: float) -> str:
    """Microsecond figure for display; NaN (no in-time responses) → n/a."""
    return "n/a" if math.isnan(value) else f"{value:.0f}µs"


@dataclass(frozen=True)
class RunResult:
    """Digest of one back-test run."""

    system: str
    model: str
    n_queries: int  # scored queries (known deadline)
    responded: int  # completed within deadline
    completed_late: int
    dropped: int
    mean_latency_us: float  # tick-to-trade of in-time responses; NaN if none
    p50_latency_us: float
    p99_latency_us: float
    mean_batch_size: float
    mean_power_w: float
    peak_power_w: float
    energy_j: float
    duration_s: float

    @property
    def response_rate(self) -> float:
        """Fraction of scored queries answered within their deadline."""
        return self.responded / self.n_queries if self.n_queries else 0.0

    @property
    def miss_rate(self) -> float:
        """1 − response rate."""
        return 1.0 - self.response_rate

    def describe(self) -> str:
        """One-line human summary."""
        return (
            f"{self.system}/{self.model}: {self.response_rate:.1%} response "
            f"({self.responded}/{self.n_queries}), mean t2t "
            f"{_fmt_us(self.mean_latency_us)}, p99 {_fmt_us(self.p99_latency_us)}, "
            f"batch {self.mean_batch_size:.2f}, power {self.mean_power_w:.1f}W "
            f"(peak {self.peak_power_w:.1f}W)"
        )


@dataclass
class MetricsCollector:
    """Accumulates per-query outcomes and a power-over-time integral."""

    system: str
    model: str
    _latencies_us: list[float] = field(default_factory=list)
    _batch_sizes: list[int] = field(default_factory=list)
    responded: int = 0
    completed_late: int = 0
    dropped: int = 0
    unscored: int = 0
    trace: list = field(default_factory=list)  # (query_id, responded_in_time)
    _energy_j: float = 0.0
    _power_time_ns: int = 0
    _peak_power_w: float = 0.0
    _last_power_sample: tuple[int, float] | None = None
    # Open constant-wattage segment: (start_ns, watts).  Integration
    # happens only when the value changes (and for the trailing segment
    # in result()), so a caller that skips value-identical samples — the
    # fast simulator loop — accumulates the exact same float sequence as
    # one that samples every event.
    _segment: tuple[int, float] | None = None
    # Aggregate-metric registry; NULL_METRICS is a shared no-op, so the
    # recording paths below stay branch-free whether metrics are on or
    # off.  Instruments are pre-bound in ``__post_init__`` — the hot
    # paths never do a name lookup.
    registry: MetricRegistry = field(default=NULL_METRICS, repr=False)

    def __post_init__(self) -> None:
        reg = self.registry
        self._m_responded = reg.counter("queries.responded")
        self._m_late = reg.counter("queries.completed_late")
        self._m_dropped = reg.counter("queries.dropped")
        self._m_unscored = reg.counter("queries.unscored")
        self._m_deadline_miss = reg.counter("deadline.missed")
        self._m_t2t = reg.histogram("tick_to_trade_ns")
        self._m_batch = reg.histogram("batch.size")
        self._m_power = reg.gauge("power.rail_w")

    def record_completion(self, query: Query, order_time: int, batch_size: int) -> None:
        """A query's order left the system at ``order_time``."""
        if query.deadline < 0:
            self.unscored += 1
            self._m_unscored.inc()
            return
        self._batch_sizes.append(batch_size)
        self._m_batch.record(batch_size)
        if order_time <= query.deadline:
            self.responded += 1
            self.trace.append((query.query_id, True))
            self._latencies_us.append((order_time - query.arrival) / 1_000.0)
            self._m_responded.inc()
            self._m_t2t.record(order_time - query.arrival)
        else:
            self.completed_late += 1
            self.trace.append((query.query_id, False))
            self._m_late.inc()
            self._m_deadline_miss.inc()
        self.registry.maybe_flush(order_time)

    def record_completion_ids(
        self,
        query_id: int,
        deadline: int,
        arrival: int,
        order_time: int,
        batch_size: int,
    ) -> None:
        """Identity-only completion recording for the fast loop's lazy
        path: counter-, trace- and float-identical to
        :meth:`record_completion` without a materialised :class:`Query`."""
        if deadline < 0:
            self.unscored += 1
            self._m_unscored.inc()
            return
        self._batch_sizes.append(batch_size)
        self._m_batch.record(batch_size)
        if order_time <= deadline:
            self.responded += 1
            self.trace.append((query_id, True))
            self._latencies_us.append((order_time - arrival) / 1_000.0)
            self._m_responded.inc()
            self._m_t2t.record(order_time - arrival)
        else:
            self.completed_late += 1
            self.trace.append((query_id, False))
            self._m_late.inc()
            self._m_deadline_miss.inc()
        self.registry.maybe_flush(order_time)

    def record_drop(self, query: Query) -> None:
        """A query was dropped before completing."""
        self.record_drop_ids(query.query_id, query.deadline)

    def record_drop_ids(self, query_id: int, deadline: int) -> None:
        """Identity-only drop recording for the fast loop's lazy path:
        counter- and trace-identical to :meth:`record_drop` without
        requiring a materialised :class:`Query`."""
        if deadline < 0:
            self.unscored += 1
            self._m_unscored.inc()
        else:
            self.dropped += 1
            self.trace.append((query_id, False))
            self._m_dropped.inc()
            self._m_deadline_miss.inc()

    def sample_power(self, now: int, watts: float) -> None:
        """Integrate power over time (call at every state change).

        The integral is a step function: the previous wattage is held
        until ``now``.  Equal timestamps replace the reading (last write
        at an instant wins); an out-of-order sample (``now`` before the
        last one) still registers for the peak but never rewinds the
        integral.  Value-identical samples only extend the open segment,
        so redundant sampling never perturbs the float accumulation.
        """
        last = self._last_power_sample
        if last is not None:
            if now < last[0]:
                self._peak_power_w = max(self._peak_power_w, watts)
                return
            if watts != last[1]:
                start, seg_watts = self._segment
                dt = now - start
                if dt > 0:
                    self._energy_j += seg_watts * dt / 1e9
                    self._power_time_ns += dt
                self._segment = (now, watts)
                # Gauge writes happen only on value changes (and the
                # first sample below), so the fast loop — which skips
                # value-identical samples — produces the identical gauge
                # sequence as the reference loop.
                self._m_power.set(watts)
        else:
            self._segment = (now, watts)
            self._m_power.set(watts)
        self._peak_power_w = max(self._peak_power_w, watts)
        self._last_power_sample = (now, watts)

    def result(self) -> RunResult:
        """Finalise into a :class:`RunResult`.

        Latency statistics cover in-time responses only; when a run had
        none they are NaN (``describe()`` prints ``n/a``) rather than a
        fake 0 µs — an all-miss run must not masquerade as a 0-latency
        run.
        """
        if self._latencies_us:
            lat = np.asarray(self._latencies_us)
            mean_us = float(lat.mean())
            p50_us = float(np.percentile(lat, 50))
            p99_us = float(np.percentile(lat, 99))
        else:
            mean_us = p50_us = p99_us = float("nan")
        scored = self.responded + self.completed_late + self.dropped
        energy_j = self._energy_j
        power_time_ns = self._power_time_ns
        if self._segment is not None and self._last_power_sample is not None:
            # Close the trailing constant-wattage segment (non-mutating:
            # result() stays safe to call repeatedly).
            start, seg_watts = self._segment
            dt = self._last_power_sample[0] - start
            if dt > 0:
                energy_j += seg_watts * dt / 1e9
                power_time_ns += dt
        duration_s = power_time_ns / 1e9
        return RunResult(
            system=self.system,
            model=self.model,
            n_queries=scored,
            responded=self.responded,
            completed_late=self.completed_late,
            dropped=self.dropped,
            mean_latency_us=mean_us,
            p50_latency_us=p50_us,
            p99_latency_us=p99_us,
            mean_batch_size=(
                float(np.mean(self._batch_sizes)) if self._batch_sizes else 0.0
            ),
            mean_power_w=(energy_j / duration_s if duration_s > 0 else 0.0),
            peak_power_w=self._peak_power_w,
            energy_j=energy_j,
            duration_s=duration_s,
        )
