"""Simulator speed trajectory: the repo's first perf datapoint.

Two layers are measured and persisted to
``benchmarks/results/BENCH_sim_speed.json``:

1. **Sweep decision rate** — ``WorkloadScheduler.decide()`` throughput,
   vectorized grid path vs the reference Algorithm-1 loop, over a fixed
   randomized mix of sweep situations.
2. **End-to-end figure path** — the Fig. 11 + Fig. 13 reproduction grid,
   "legacy" mode (reference sweep, per-driver workload regeneration,
   serial — how the drivers ran before the fast-path work) vs "fast"
   mode (vectorized sweep, shared workload cache, ``jobs`` workers).

Both modes must produce identical figure results; that equality is
asserted unconditionally.  The speed assertions are calibrated to the
machine: the ≥3x end-to-end target needs the parallel layer, so it only
applies when the host has ≥4 CPUs — on smaller hosts the gate is
"no slower than legacy" and the measured ratio is still recorded.
"""

import dataclasses
import json
import os
import time

import numpy as np

from conftest import RESULTS_DIR
from repro.accelerator.power import DVFSTable
from repro.baselines import lighttrader_profile
from repro.bench import bench_duration_s, headline_workload, run_fig11, run_fig13
from repro.core.scheduler import WorkloadScheduler
from repro.sim import clear_workload_cache


def _decision_situations(n: int = 200, seed: int = 7):
    """A reproducible mix of sweep situations (deadline slack spreads)."""
    rng = np.random.default_rng(seed)
    situations = []
    for _ in range(n):
        depth = int(rng.integers(1, 17))
        slack = rng.lognormal(mean=np.log(2e6), sigma=1.0, size=depth)
        deadlines = [int(1_000_000 + s) for s in slack]
        budget = float(rng.uniform(5.0, 60.0))
        floor = float(rng.choice([0.0, 1.2e9, 2.0e9]))
        situations.append((deadlines, budget, floor))
    return situations


def _decide_rate(scheduler: WorkloadScheduler, situations) -> float:
    """decide() calls per second over the situation mix."""
    # Warm grids/caches outside the timed region.
    for deadlines, budget, floor in situations[:5]:
        scheduler.decide("deeplob", 1_000_000, deadlines, budget, floor)
    t0 = time.perf_counter()
    for deadlines, budget, floor in situations:
        scheduler.decide("deeplob", 1_000_000, deadlines, budget, floor)
    return len(situations) / (time.perf_counter() - t0)


class TestSweepDecisionRate:
    def test_bench_sweep_decision_rate(self, benchmark, record_table):
        profile = lighttrader_profile()
        table = DVFSTable(cap_hz=2.2e9)
        situations = _decision_situations()
        vec = WorkloadScheduler(profile, table, vectorized=True)
        ref = WorkloadScheduler(profile, table, vectorized=False)

        rates = {}

        def measure():
            rates["vectorized_per_s"] = _decide_rate(vec, situations)
            rates["reference_per_s"] = _decide_rate(ref, situations)
            return rates

        benchmark.pedantic(measure, rounds=1, iterations=1)
        speedup = rates["vectorized_per_s"] / rates["reference_per_s"]
        record_table(
            "sim_speed_sweep",
            "Sweep decision rate (decisions/s)\n"
            f"  vectorized: {rates['vectorized_per_s']:,.0f}\n"
            f"  reference:  {rates['reference_per_s']:,.0f}\n"
            f"  speedup:    {speedup:.1f}x",
        )
        _merge_results(
            sweep={
                "vectorized_decisions_per_s": rates["vectorized_per_s"],
                "reference_decisions_per_s": rates["reference_per_s"],
                "speedup": speedup,
            }
        )
        # Decisions themselves stay identical (the parity suite proves it);
        # here only the rate matters.  Measured ~50x; 3x keeps CI headroom.
        assert speedup >= 3.0


class TestEndToEndFigurePath:
    def test_bench_fig_path_legacy_vs_fast(self, benchmark, record_table):
        duration = min(bench_duration_s(), 15.0)
        counts = (1, 2)
        cpus = os.cpu_count() or 1
        jobs_fast = min(4, cpus)

        def fig_path(jobs):
            fig11 = run_fig11(duration_s=duration, jobs=jobs)
            fig13 = run_fig13(duration_s=duration, counts=counts, jobs=jobs)
            return fig11, fig13

        timings = {"legacy_s": [], "fast_s": []}
        results = {}

        def one_round():
            # Legacy: reference sweep, workload regenerated per driver
            # (each driver call started from a cold cache before this PR),
            # serial execution.
            os.environ["REPRO_SWEEP_REFERENCE"] = "1"
            try:
                t0 = time.perf_counter()
                clear_workload_cache()
                results["fig11_legacy"] = run_fig11(duration_s=duration, jobs=1)
                clear_workload_cache()
                results["fig13_legacy"] = run_fig13(
                    duration_s=duration, counts=counts, jobs=1
                )
                timings["legacy_s"].append(time.perf_counter() - t0)
            finally:
                os.environ.pop("REPRO_SWEEP_REFERENCE", None)
            # Fast: vectorized sweep, one shared cached workload, jobs workers.
            clear_workload_cache()
            t0 = time.perf_counter()
            results["fig11_fast"], results["fig13_fast"] = fig_path(jobs_fast)
            timings["fast_s"].append(time.perf_counter() - t0)

        # Two interleaved rounds, best-of per mode: single-shot timings on
        # shared CI hosts swing far more than the effect under test.
        benchmark.pedantic(one_round, rounds=2, iterations=1)
        timings = {mode: min(samples) for mode, samples in timings.items()}
        fig11_legacy, fig13_legacy = results["fig11_legacy"], results["fig13_legacy"]
        fig11_fast, fig13_fast = results["fig11_fast"], results["fig13_fast"]

        # The fast path changes how the figures are computed, never what
        # they contain: bit-identical results, whatever the job count.
        assert dataclasses.asdict(fig11_fast) == dataclasses.asdict(fig11_legacy)
        assert dataclasses.asdict(fig13_fast) == dataclasses.asdict(fig13_legacy)

        n_queries = len(headline_workload(duration).timestamps)
        n_runs = 3 * 2 + 2 * 2 * len(counts) * 3  # fig11 grid + fig13 grid
        speedup = timings["legacy_s"] / timings["fast_s"]
        qps_fast = n_runs * n_queries / timings["fast_s"]
        record_table(
            "sim_speed_e2e",
            "Fig. 11+13 reproduction path\n"
            f"  legacy (reference sweep, cold cache, serial): {timings['legacy_s']:.2f} s\n"
            f"  fast (vectorized, cached, jobs={jobs_fast}):   {timings['fast_s']:.2f} s\n"
            f"  speedup: {speedup:.2f}x   ({cpus} CPU(s) available)\n"
            f"  queries simulated: {qps_fast:,.0f}/s over {n_runs} runs",
        )
        _merge_results(
            end_to_end={
                "duration_s": duration,
                "n_runs": n_runs,
                "n_queries_per_run": n_queries,
                "legacy_s": timings["legacy_s"],
                "fast_s": timings["fast_s"],
                "speedup": speedup,
                "queries_per_s_fast": qps_fast,
                "jobs_fast": jobs_fast,
                "cpu_count": cpus,
            }
        )
        if cpus >= 4 and duration >= 10.0:
            # All three layers engaged and enough simulated time to
            # amortise pool start-up: vectorized sweep + cache + workers.
            assert speedup >= 3.0
        elif cpus >= 4:
            # Short smoke workloads leave pool start-up unamortised.
            assert speedup >= 1.2
        else:
            # Without spare cores the pool cannot contribute; the fast
            # path must still never lose to legacy (0.8 absorbs timer
            # noise on very short single-core workloads).
            assert speedup >= 0.8


def _merge_results(**sections) -> None:
    """Merge sections into BENCH_sim_speed.json (tests run independently)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_sim_speed.json"
    payload = {}
    if path.exists():
        payload = json.loads(path.read_text())
    payload.update(sections)
    path.write_text(json.dumps(payload, indent=2) + "\n")
