"""Simulator speed trajectory: the repo's first perf datapoint.

Two layers are measured and persisted to
``benchmarks/results/BENCH_sim_speed.json``:

1. **Sweep decision rate** — ``WorkloadScheduler.decide()`` throughput,
   vectorized grid path vs the reference Algorithm-1 loop, over a fixed
   randomized mix of sweep situations.
2. **End-to-end event loop** — the Fig. 11 + Fig. 13 reproduction grid
   at ``jobs=1``, fast event loop (``REPRO_FAST_LOOP`` default: batched
   admission, decision memoization, allocation-free telemetry) vs the
   reference event loop (``REPRO_FAST_LOOP=0``).  Single-core on purpose:
   the ratio isolates the event-loop overhaul from the process pool.

Both loops must produce identical figure results; that equality is
asserted unconditionally.  The speed gates: fast ≥ 1.5x the reference
loop, and — at the standard benchmark duration — fast single-core
throughput ≥ 3x the committed pre-overhaul baseline
(:data:`BASELINE_QUERIES_PER_S`).
"""

import dataclasses
import json
import os
import time

import numpy as np

from conftest import RESULTS_DIR
from repro.accelerator.power import DVFSTable
from repro.baselines import lighttrader_profile
from repro.bench import bench_duration_s, headline_workload, run_fig11, run_fig13
from repro.core.scheduler import WorkloadScheduler
from repro.metrics import MetricRegistry
from repro.metrics.manifest import build_manifest, write_manifest
from repro.sim.backtest import Backtester, SimConfig
from repro.sim.workload_cache import cached_synthetic_workload

# The canonical manifest run: pinned duration/seed/config so the metric
# summaries (and hence the committed baseline diff) are byte-stable
# across machines — nothing in the manifest's gated sections depends on
# wall-clock.
MANIFEST_DURATION_S = 6.0
MANIFEST_SEED = 1


def _decision_situations(n: int = 200, seed: int = 7):
    """A reproducible mix of sweep situations (deadline slack spreads)."""
    rng = np.random.default_rng(seed)
    situations = []
    for _ in range(n):
        depth = int(rng.integers(1, 17))
        slack = rng.lognormal(mean=np.log(2e6), sigma=1.0, size=depth)
        deadlines = [int(1_000_000 + s) for s in slack]
        budget = float(rng.uniform(5.0, 60.0))
        floor = float(rng.choice([0.0, 1.2e9, 2.0e9]))
        situations.append((deadlines, budget, floor))
    return situations


def _decide_rate(scheduler: WorkloadScheduler, situations) -> float:
    """decide() calls per second over the situation mix."""
    # Warm grids/caches outside the timed region.
    for deadlines, budget, floor in situations[:5]:
        scheduler.decide("deeplob", 1_000_000, deadlines, budget, floor)
    t0 = time.perf_counter()
    for deadlines, budget, floor in situations:
        scheduler.decide("deeplob", 1_000_000, deadlines, budget, floor)
    return len(situations) / (time.perf_counter() - t0)


class TestSweepDecisionRate:
    def test_bench_sweep_decision_rate(self, benchmark, record_table):
        profile = lighttrader_profile()
        table = DVFSTable(cap_hz=2.2e9)
        situations = _decision_situations()
        vec = WorkloadScheduler(profile, table, vectorized=True)
        ref = WorkloadScheduler(profile, table, vectorized=False)

        rates = {}

        def measure():
            rates["vectorized_per_s"] = _decide_rate(vec, situations)
            rates["reference_per_s"] = _decide_rate(ref, situations)
            return rates

        benchmark.pedantic(measure, rounds=1, iterations=1)
        speedup = rates["vectorized_per_s"] / rates["reference_per_s"]
        record_table(
            "sim_speed_sweep",
            "Sweep decision rate (decisions/s)\n"
            f"  vectorized: {rates['vectorized_per_s']:,.0f}\n"
            f"  reference:  {rates['reference_per_s']:,.0f}\n"
            f"  speedup:    {speedup:.1f}x",
        )
        _merge_results(
            sweep={
                "vectorized_decisions_per_s": rates["vectorized_per_s"],
                "reference_decisions_per_s": rates["reference_per_s"],
                "speedup": speedup,
            }
        )
        # Decisions themselves stay identical (the parity suite proves it);
        # here only the rate matters.  Measured ~50x; 3x keeps CI headroom.
        assert speedup >= 3.0


# Committed single-core throughput of the Fig. 11+13 grid *before* the
# event-loop overhaul (batched admission / decision memoization /
# allocation-free telemetry), measured at the standard 15 s benchmark
# duration on the reference container.  The overhaul's acceptance gate
# is >= 3x this figure.
BASELINE_QUERIES_PER_S = 13_345.46


def _grid_runs(counts) -> int:
    """Back-tests in one Fig. 11 + Fig. 13 sweep (matches the drivers)."""
    from repro.bench.experiments import MODELS, SCHEMES

    fig11 = 3 * len(MODELS)  # three system profiles x model zoo
    fig13 = 2 * len(MODELS) * len(counts) * len(SCHEMES)  # conditions x grid
    return fig11 + fig13


class TestEndToEndFigurePath:
    def test_bench_fig_path_fast_vs_reference_loop(self, benchmark, record_table):
        duration = min(bench_duration_s(), 15.0)
        counts = (1, 2)
        cpus = os.cpu_count() or 1

        def fig_path():
            fig11 = run_fig11(duration_s=duration, jobs=1)
            fig13 = run_fig13(duration_s=duration, counts=counts, jobs=1)
            return fig11, fig13

        timings = {"reference_s": [], "fast_s": []}
        results = {}

        def one_round():
            # Reference event loop: heap-merged arrivals, per-event
            # scheduler decisions, per-query telemetry objects.  Same
            # vectorized sweep and warm workload cache as the fast side,
            # so the ratio isolates the event-loop overhaul.
            os.environ["REPRO_FAST_LOOP"] = "0"
            try:
                headline_workload(duration)  # warm the shared cache
                t0 = time.perf_counter()
                results["fig11_ref"], results["fig13_ref"] = fig_path()
                timings["reference_s"].append(time.perf_counter() - t0)
            finally:
                os.environ.pop("REPRO_FAST_LOOP", None)
            # Fast event loop (the default): batched admission, decision
            # memoization, allocation-free hot path.
            t0 = time.perf_counter()
            results["fig11_fast"], results["fig13_fast"] = fig_path()
            timings["fast_s"].append(time.perf_counter() - t0)

        # Two interleaved rounds, best-of per mode: single-shot timings on
        # shared CI hosts swing far more than the effect under test.
        benchmark.pedantic(one_round, rounds=2, iterations=1)
        timings = {mode: min(samples) for mode, samples in timings.items()}

        # The fast loop changes how the figures are computed, never what
        # they contain: bit-identical results.
        assert dataclasses.asdict(results["fig11_fast"]) == dataclasses.asdict(
            results["fig11_ref"]
        )
        assert dataclasses.asdict(results["fig13_fast"]) == dataclasses.asdict(
            results["fig13_ref"]
        )

        n_queries = len(headline_workload(duration).timestamps)
        n_runs = _grid_runs(counts)
        speedup = timings["reference_s"] / timings["fast_s"]
        qps_fast = n_runs * n_queries / timings["fast_s"]
        qps_reference = n_runs * n_queries / timings["reference_s"]
        vs_baseline = qps_fast / BASELINE_QUERIES_PER_S
        record_table(
            "sim_speed_e2e",
            "Fig. 11+13 grid, single core (jobs=1)\n"
            f"  reference loop (REPRO_FAST_LOOP=0): {timings['reference_s']:.2f} s"
            f"  ({qps_reference:,.0f} queries/s)\n"
            f"  fast loop (default):                {timings['fast_s']:.2f} s"
            f"  ({qps_fast:,.0f} queries/s)\n"
            f"  fast vs reference: {speedup:.2f}x   ({cpus} CPU(s) available)\n"
            f"  fast vs committed baseline ({BASELINE_QUERIES_PER_S:,.0f} q/s): "
            f"{vs_baseline:.2f}x over {n_runs} runs",
        )
        _merge_results(
            end_to_end={
                "duration_s": duration,
                "n_runs": n_runs,
                "n_queries_per_run": n_queries,
                "reference_s": timings["reference_s"],
                "fast_s": timings["fast_s"],
                "speedup_vs_reference": speedup,
                "queries_per_s_reference": qps_reference,
                "queries_per_s_fast": qps_fast,
                "baseline_queries_per_s": BASELINE_QUERIES_PER_S,
                "speedup_vs_baseline": vs_baseline,
                "jobs": 1,
                "cpu_count": cpus,
            }
        )
        # The overhaul's floor against its own reference loop (measured
        # ~2x; 1.5 leaves noise headroom) applies at every duration.
        assert speedup >= 1.5
        if duration >= 10.0:
            # The acceptance gate vs the committed pre-overhaul baseline
            # needs the standard duration: short smoke workloads leave
            # per-run setup unamortised.
            assert vs_baseline >= 3.0


class TestLatencyManifest:
    def test_bench_latency_manifest(self, benchmark, record_table):
        """Canonical pinned run: histogram-derived latency percentiles
        into BENCH_sim_speed.json, full metric manifest into
        ``benchmarks/results/run_manifest.json`` for the CI diff gate."""
        workload = cached_synthetic_workload(
            MANIFEST_DURATION_S, seed=MANIFEST_SEED, name="manifest"
        )
        config = SimConfig(
            model="deeplob",
            n_accelerators=2,
            workload_scheduling=True,
            dvfs_scheduling=True,
            power_condition="limited",
        )
        registry = MetricRegistry()
        bt = Backtester(workload, lighttrader_profile(), config, metrics=registry)

        state = {}

        def measure():
            t0 = time.perf_counter()
            state["result"] = bt.run()
            state["elapsed_s"] = time.perf_counter() - t0
            return state["result"]

        benchmark.pedantic(measure, rounds=1, iterations=1)
        result, elapsed = state["result"], state["elapsed_s"]
        t2t = registry.histogram("tick_to_trade_ns")
        assert t2t.count > 0, "manifest run recorded no tick-to-trade samples"
        p50, p99 = t2t.percentile(50.0), t2t.percentile(99.0)
        qps = result.n_queries / elapsed

        manifest = build_manifest(
            run={
                "system": "lighttrader[ws+ds]",
                "profile": "lighttrader",
                "scheme": "ws+ds",
                "model": config.model,
                "workload": workload.name,
                "workload_ticks": len(workload),
                "duration_s": MANIFEST_DURATION_S,
            },
            registry=registry,
            config=dataclasses.asdict(config),
            result=result,
            seeds={"workload": MANIFEST_SEED},
            perf={"queries_per_s": qps, "elapsed_s": elapsed},
        )
        RESULTS_DIR.mkdir(exist_ok=True)
        write_manifest(RESULTS_DIR / "run_manifest.json", manifest)

        record_table(
            "sim_speed_latency",
            "Canonical run latency (histogram-derived)\n"
            f"  tick-to-trade p50: {p50 / 1e3:,.1f} us   p99: {p99 / 1e3:,.1f} us\n"
            f"  ({t2t.count} completions, {qps:,.0f} queries/s)",
        )
        _merge_results(
            latency={
                "duration_s": MANIFEST_DURATION_S,
                "seed": MANIFEST_SEED,
                "n_queries": result.n_queries,
                "tick_to_trade_p50_ns": p50,
                "tick_to_trade_p99_ns": p99,
                "queries_per_s": qps,
            }
        )
        assert p50 <= p99


def _merge_results(**sections) -> None:
    """Merge sections into BENCH_sim_speed.json (tests run independently)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_sim_speed.json"
    payload = {}
    if path.exists():
        payload = json.loads(path.read_text())
    payload.update(sections)
    path.write_text(json.dumps(payload, indent=2) + "\n")
