"""Fig. 12: response rate vs number of accelerators (1..16), sufficient
and limited power conditions."""

from repro import paperdata
from repro.bench import bench_duration_s, run_fig12


def test_fig12_scaling(benchmark, record_table):
    result = benchmark.pedantic(
        run_fig12, kwargs={"duration_s": max(bench_duration_s(), 120.0)}, rounds=1, iterations=1
    )
    record_table("fig12", result.table())

    for condition in ("sufficient", "limited"):
        for model, series in result.rates[condition].items():
            values = [series[n] for n in paperdata.ACCELERATOR_COUNTS]
            # Rises: multiple accelerators beat one.
            assert max(values[1:]) > values[0]
            # Saturates: the final doubling gains little or loses (the
            # paper's post-saturation degradation).
            assert values[-1] - values[-2] < 0.02

    # 8-accelerator sufficient-power rates near the quoted 99.5/98.7/95.9%.
    for model, paper in paperdata.FIG12_RESPONSE_RATE_8ACCEL_SUFFICIENT.items():
        assert abs(result.rates["sufficient"][model][8] - paper) < 0.04

    # Limited power cannot beat sufficient power at the optimum.
    for model in result.rates["sufficient"]:
        best_sufficient = max(result.rates["sufficient"][model].values())
        best_limited = max(result.rates["limited"][model].values())
        assert best_limited <= best_sufficient + 0.01

    # Simpler models sustain higher response at every count.
    for condition in ("sufficient", "limited"):
        for n in (1, 8):
            rates = result.rates[condition]
            assert rates["vanilla_cnn"][n] >= rates["deeplob"][n]
