"""Table III: static clock/power configuration regenerated from the
calibrated power model."""

from repro.bench import run_table3


def test_table3_static_dvfs_table(benchmark, record_table):
    result = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    record_table("table3", result.table())
    # 30 cells; the fit reproduces all but (at most) a couple exactly and
    # never deviates by more than one 100 MHz step.
    assert result.exact_cells >= 27
    assert result.total_cells == 30
