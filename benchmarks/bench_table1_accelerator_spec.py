"""Table I: single-accelerator specification from the architecture model."""

import pytest

from repro import paperdata
from repro.bench import run_table1


def test_table1_accelerator_spec(benchmark, record_table):
    result = benchmark.pedantic(run_table1, rounds=3, iterations=1)
    record_table("table1", result.table())
    assert abs(result.measured_tflops - paperdata.TABLE1_BF16_TFLOPS) < 1.0
    assert abs(result.measured_int8_tops - paperdata.TABLE1_INT8_TOPS) < 4.0
    assert result.measured_max_power_w == pytest.approx(paperdata.TABLE1_MAX_POWER_W)
