"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one paper table/figure via
:mod:`repro.bench.experiments`, times the run with pytest-benchmark,
prints the rendered table, and writes it to ``benchmarks/results/`` so
EXPERIMENTS.md can be assembled from the same artifacts.

Workload sizing: REPRO_BENCH_DURATION (seconds of simulated market time,
default 60) controls simulation length; the calibration targets in
EXPERIMENTS.md were measured at 300 s.

Observability: set REPRO_TRACE_DIR to make every back-test a benchmark
drives write a per-run JSONL telemetry trace there (rendered with
``python -m repro.telemetry.report <dir>``).
"""

import pathlib

import pytest

from repro import envcfg
from repro.telemetry import TRACE_DIR_ENV, configure_logging

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session", autouse=True)
def _logging_and_trace_note():
    log = configure_logging()
    trace_dir = envcfg.get_path(TRACE_DIR_ENV)
    if trace_dir:
        log.info("telemetry enabled: JSONL traces land in %s", trace_dir)
    yield


@pytest.fixture
def record_table(request):
    """Return a callable that prints + persists a rendered table."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        print("\n" + text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _record
