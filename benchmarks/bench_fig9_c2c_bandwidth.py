"""Fig. 9: C2C interface effective bandwidth vs Interlaken, plus the
watermark flow-control behaviour of Fig. 9(d)."""

from repro import paperdata
from repro.accelerator import WatermarkFifo, simulate_flow_control
from repro.bench import run_fig9


def test_fig9_bandwidth_ratio(benchmark, record_table):
    result = benchmark.pedantic(run_fig9, rounds=3, iterations=1)
    record_table("fig9", result.table())
    assert result.ratio == pytest_approx(
        paperdata.FIG9_C2C_VS_INTERLAKEN_BANDWIDTH, rel=0.05
    )


def test_fig9_watermark_flow_control(benchmark):
    """The OOB watermark FC sustains a slow consumer with zero overflow."""

    def run():
        fifo = WatermarkFifo(depth=64, high_watermark=48, low_watermark=16, delay_cycles=4)
        return simulate_flow_control(2_000, fifo, consumer_period=2)

    stats = benchmark.pedantic(run, rounds=3, iterations=1)
    assert stats.overflows == 0
    assert stats.words_sent == 2_000
    assert abs(stats.throughput - 0.5) < 0.05  # consumer-bound


def pytest_approx(value, rel):
    import pytest

    return pytest.approx(value, rel=rel)
