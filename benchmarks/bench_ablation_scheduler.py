"""Ablations beyond the paper's tables.

1. Candidate-ranking metric in Algorithm 1 (PPW vs latency-greedy vs
   throughput-greedy) — PPW's energy awareness should cost little
   response rate while drawing less power.
2. Deadline policy sensitivity (opportunity vs fixed vs tick-horizon).
3. Burstiness sweep: scheduling gains should grow with traffic burstiness.
"""

import pytest

from repro.baselines import lighttrader_profile
from repro.bench import (
    RunSpec,
    WorkloadSpec,
    bench_duration_s,
    render_table,
    run_many,
)
from repro.sim import Backtester, SimConfig, cached_synthetic_workload
from repro.sim.workload import (
    FixedDeadline,
    HorizonDeadline,
    OpportunityDeadline,
    Regime,
    TrafficSpec,
)


@pytest.fixture(scope="module")
def profile():
    return lighttrader_profile()


@pytest.fixture(scope="module")
def workload():
    return cached_synthetic_workload(
        duration_s=min(bench_duration_s(), 60.0), seed=3, name="ablation"
    )


class TestMetricAblation:
    @pytest.fixture(scope="class")
    def results(self, workload):
        # Independent runs fan out through the experiment runner
        # (REPRO_BENCH_JOBS>1 parallelises them).
        metrics = ("ppw", "latency", "throughput")
        specs = [
            RunSpec(
                profile="lighttrader",
                config=SimConfig(
                    model="deeplob",
                    n_accelerators=2,
                    power_condition="limited",
                    workload_scheduling=True,
                    scheduler_metric=metric,
                ),
                workload=WorkloadSpec(
                    duration_s=min(bench_duration_s(), 60.0), seed=3, name="ablation"
                ),
                run_name=f"ablation-metric-{metric}",
            )
            for metric in metrics
        ]
        return dict(zip(metrics, run_many(specs)))

    def test_bench_metric_ablation(self, benchmark, record_table, results, workload, profile):
        def once():
            return Backtester(
                workload,
                profile,
                SimConfig(model="deeplob", n_accelerators=2, workload_scheduling=True),
            ).run()

        benchmark.pedantic(once, rounds=1, iterations=1)
        rows = [
            [m, f"{r.miss_rate:.3f}", f"{r.mean_power_w:.2f}", f"{r.mean_batch_size:.2f}"]
            for m, r in results.items()
        ]
        record_table(
            "ablation_metric",
            render_table(
                "Ablation: Algorithm-1 candidate metric (deeplob, N=2, limited)",
                ["metric", "miss rate", "mean power (W)", "mean batch"],
                rows,
            ),
        )
        # PPW's energy awareness draws no more power than latency-greedy
        # while costing at most a small miss-rate premium.
        assert results["ppw"].mean_power_w <= results["latency"].mean_power_w + 0.05
        assert results["ppw"].miss_rate <= results["latency"].miss_rate + 0.02


class TestDeadlineAblation:
    def test_bench_deadline_policies(self, benchmark, record_table, profile):
        policies = {
            "opportunity": OpportunityDeadline(),
            "fixed-5ms": FixedDeadline(budget_ns=5_000_000),
            "horizon-100": HorizonDeadline(horizon=100),
        }
        rows = []

        def run_all():
            rows.clear()
            for name, policy in policies.items():
                wl = cached_synthetic_workload(
                    duration_s=min(bench_duration_s(), 30.0),
                    policy=policy,
                    seed=3,
                    name=f"ablation-{name}",
                )
                base = Backtester(wl, profile, SimConfig(model="deeplob")).run()
                sched = Backtester(
                    wl,
                    profile,
                    SimConfig(
                        model="deeplob",
                        workload_scheduling=True,
                        dvfs_scheduling=True,
                    ),
                ).run()
                rows.append(
                    [name, f"{base.miss_rate:.3f}", f"{sched.miss_rate:.3f}"]
                )
            return rows

        benchmark.pedantic(run_all, rounds=1, iterations=1)
        record_table(
            "ablation_deadline",
            render_table(
                "Ablation: deadline policy (deeplob, N=1)",
                ["policy", "baseline miss", "ws+ds miss"],
                rows,
            ),
        )
        # Scheduling never hurts dramatically under any policy.
        for __, base, sched in rows:
            assert float(sched) <= float(base) + 0.02


class TestBurstinessAblation:
    def test_bench_burstiness_sweep(self, benchmark, record_table, profile):
        rows = []

        def run_all():
            rows.clear()
            for dwell_scale in (0.5, 1.0, 2.0):
                spec = TrafficSpec(
                    calm=Regime("calm", 120.0, 4.9),
                    episodes=(
                        Regime("elevated", 2_000.0, 0.05 * dwell_scale),
                        Regime("active", 7_600.0, 0.05 * dwell_scale),
                        Regime("burst", 60_000.0, 0.002 * dwell_scale),
                    ),
                    episode_weights=(0.486, 0.192, 0.324),
                )
                wl = cached_synthetic_workload(
                    duration_s=min(bench_duration_s(), 30.0),
                    spec=spec,
                    seed=3,
                    name=f"ablation-burst-x{dwell_scale}",
                )
                base = Backtester(wl, profile, SimConfig(model="deeplob")).run()
                sched = Backtester(
                    wl,
                    profile,
                    SimConfig(model="deeplob", workload_scheduling=True),
                ).run()
                rows.append(
                    [
                        f"x{dwell_scale}",
                        f"{base.miss_rate:.3f}",
                        f"{sched.miss_rate:.3f}",
                        f"{(base.miss_rate - sched.miss_rate):.3f}",
                    ]
                )
            return rows

        benchmark.pedantic(run_all, rounds=1, iterations=1)
        record_table(
            "ablation_burstiness",
            render_table(
                "Ablation: episode-length scale vs WS gain (deeplob, N=1)",
                ["episode scale", "baseline miss", "ws miss", "absolute gain"],
                rows,
            ),
        )
        # Workload scheduling never hurts, whatever the episode shape
        # (the direction of the gain-vs-length relation is seed-sensitive
        # at bench durations; the full-length sweep lives in EXPERIMENTS.md).
        gains = [float(r[3]) for r in rows]
        assert min(gains) >= -0.005
