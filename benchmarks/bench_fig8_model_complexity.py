"""Fig. 8: response rate vs model complexity (M1 simplest .. M5 heaviest)."""

from repro.bench import bench_duration_s, run_fig8


def test_fig8_response_vs_complexity(benchmark, record_table):
    result = benchmark.pedantic(
        run_fig8, kwargs={"duration_s": max(bench_duration_s(), 120.0)}, rounds=1, iterations=1
    )
    record_table("fig8", result.table())
    rates = list(result.response_rates.values())
    latencies = list(result.latencies_us.values())
    # Latency grows monotonically with complexity.
    assert latencies == sorted(latencies)
    # Response rate falls with complexity (paper Fig. 8's shape); allow
    # adjacent ties from simulation noise but require the overall trend.
    assert rates[0] == max(rates)
    assert rates[-1] == min(rates)
    assert rates[0] - rates[-1] > 0.03
