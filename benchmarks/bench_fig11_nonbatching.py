"""Fig. 11: non-batching latency, response rate and effective TFLOPS/W of
LightTrader vs the GPU-based and FPGA-based systems."""


import pytest

from repro import envcfg, paperdata
from repro.bench import bench_duration_s, run_fig11
from repro.telemetry import TRACE_DIR_ENV


def test_fig11_nonbatching(benchmark, record_table):
    result = benchmark.pedantic(
        run_fig11,
        kwargs={
            "duration_s": max(bench_duration_s(), 300.0),
            "trace_dir": envcfg.get_path(TRACE_DIR_ENV),
        },
        rounds=1,
        iterations=1,
    )
    record_table("fig11", result.table())

    # (a) latency: mean speed-ups track the published 13.92x / 7.28x.
    assert result.speedup_vs("gpu") == pytest.approx(
        paperdata.FIG11_GPU_SPEEDUP, rel=0.05
    )
    assert result.speedup_vs("fpga") == pytest.approx(
        paperdata.FIG11_FPGA_SPEEDUP, rel=0.05
    )
    # LightTrader per-model latencies sit on the calibration anchors
    # (plus the DMA transfer).
    for model, paper_ns in paperdata.FIG11_LATENCY_NS.items():
        measured = result.latency_us["lighttrader"][model]
        assert measured == pytest.approx(paper_ns / 1_000, rel=0.03)

    # (b) response rate: per-model rates within a few points of the paper,
    # correct ordering, and gains over the baselines in the right band.
    for model, paper_rate in paperdata.FIG11_RESPONSE_RATE.items():
        assert abs(result.response_rate["lighttrader"][model] - paper_rate) < 0.04
    lt = result.response_rate["lighttrader"]
    assert lt["vanilla_cnn"] > lt["translob"] > lt["deeplob"]
    assert result.response_gain_vs("gpu") == pytest.approx(
        paperdata.FIG11_GPU_RESPONSE_GAIN, rel=0.12
    )
    assert result.response_gain_vs("fpga") == pytest.approx(
        paperdata.FIG11_FPGA_RESPONSE_GAIN, rel=0.12
    )

    # (c) effective TFLOPS/W: 23.6x / 11.6x gains.
    assert result.efficiency_gain_vs("gpu") == pytest.approx(
        paperdata.FIG11_GPU_EFFICIENCY_GAIN, rel=0.06
    )
    assert result.efficiency_gain_vs("fpga") == pytest.approx(
        paperdata.FIG11_FPGA_EFFICIENCY_GAIN, rel=0.06
    )
