"""Table II: benchmark model op counts.

The paper's models are production-scale variants (93–515 GOPs); our
functional models are laptop-scale, so the reproducible quantity is the
*ordering* (vanilla CNN < TransLOB < DeepLOB) and the rough ratio shape —
documented in EXPERIMENTS.md.
"""

from repro.bench import run_table2


def test_table2_model_ops(benchmark, record_table):
    result = benchmark.pedantic(run_table2, rounds=3, iterations=1)
    record_table("table2", result.table())
    ops = result.measured_ops
    assert ops["vanilla_cnn"] < ops["translob"] < ops["deeplob"]
    # TransLOB/vanilla ratio lands close to the paper's 2.19x.
    assert 1.5 < ops["translob"] / ops["vanilla_cnn"] < 3.5
