"""Fig. 13: miss rate with workload scheduling (WS), DVFS scheduling (DS)
and both, vs the no-scheduling baseline.

Shape assertions target the paper's three stated observations.  Note
that our *relative* reductions run larger than the published 17-25%
averages (our baseline is a plain FIFO; see EXPERIMENTS.md), so the
bounds below check direction and ordering, not exact magnitude.
"""


from repro import envcfg, paperdata
from repro.bench import bench_duration_s, run_fig13
from repro.telemetry import TRACE_DIR_ENV


def test_fig13_scheduling(benchmark, record_table):
    result = benchmark.pedantic(
        run_fig13,
        kwargs={
            "duration_s": max(bench_duration_s(), 120.0),
            "trace_dir": envcfg.get_path(TRACE_DIR_ENV),
        },
        rounds=1,
        iterations=1,
    )
    record_table("fig13", result.table())

    for model in paperdata.TABLE2_TOTAL_OPS:
        # Observation 1: WS is effective at small accelerator counts.
        ws_small = result.mean_reduction(model, "ws", counts=(1, 2, 4))
        assert ws_small > 0.10, f"{model}: WS small-N reduction {ws_small:.0%}"

        # Observation 3: WS+DS meaningfully reduces miss rate across the
        # board — at least half the paper's published average.
        combined = result.mean_reduction(
            model, "ws+ds", counts=paperdata.ACCELERATOR_COUNTS
        )
        paper_value = paperdata.FIG13_BOTH_REDUCTION_ALL[model]
        assert combined > 0.5 * paper_value, (
            f"{model}: combined reduction {combined:.0%} vs paper {paper_value:.0%}"
        )
        # Schemes never increase pooled misses.
        for scheme in ("ws", "ds", "ws+ds"):
            pooled = result.mean_reduction(
                model, scheme, counts=paperdata.ACCELERATOR_COUNTS
            )
            assert pooled > -0.02, f"{model}/{scheme}: pooled {pooled:.0%}"

    # Observation 2 (on the heavy model, where baselines are far from
    # zero and the effect is robust): DS helps more with many
    # accelerators than with one.
    ds_large = result.mean_reduction("deeplob", "ds", counts=(8, 16))
    ds_small = result.mean_reduction("deeplob", "ds", counts=(1,))
    assert ds_large > 0.05, f"deeplob: DS large-N reduction {ds_large:.0%}"
    assert ds_large > ds_small
