"""Micro-benchmarks of the functional pipeline stages (wall-clock of our
Python implementations — useful for harness health, not paper numbers).

The LOB section additionally persists ``benchmarks/results/
BENCH_lob_speed.json`` — a run manifest whose deterministic ``lob.*``
metric counters come from a pinned replay (CI diffs it against the
committed baseline) and whose ``perf`` section records the measured
single-book ops/s (reference vs array, per-op vs batch) and the batched
multi-book scaling ratio.

The market-generation section persists ``BENCH_market_gen.json`` the
same way: deterministic ``lob.*`` counters from a pinned fast-path
session (CI-diffed against its committed baseline), plus measured
ticks/s for the fast vs reference generation loops, per-op book ops/s
and the depth-snapshot capture cost.  Gates: fast >= 3x reference
ticks/s, array per-op >= 1x reference per-op.
"""

import time

import numpy as np
import pytest

from conftest import RESULTS_DIR
from repro.errors import MatchingError, OrderBookError
from repro.lob import (
    ArrayMatchingEngine,
    BatchedBooks,
    BookOps,
    MatchingEngine,
    OpBatch,
    Order,
    OrderType,
    Side,
    TimeInForce,
)
from repro.lob.array_matching import OP_CANCEL, OP_SUBMIT
from repro.lob.batched import OP_LIMIT, OP_MARKET, OP_NOP, OP_REDUCE
from repro.lob.snapshot import DepthSnapshot
from repro.market import MarketConfig, MarketSimulator, cached_session, generate_session
from repro.metrics import MetricRegistry
from repro.metrics.manifest import build_manifest, write_manifest
from repro.nn import build_model
from repro.pipeline import NormalizationStats, OffloadEngine
from repro.protocol import (
    PacketParser,
    SecurityDirectory,
    encode_market_events,
    encode_udp_frame,
)
from repro.lob.events import BookUpdate, UpdateAction


@pytest.fixture(scope="module")
def tape():
    # The two-level tape cache: repeated benchmark invocations in one
    # process (and across processes under REPRO_TAPE_CACHE) reuse the
    # session instead of regenerating it.
    return cached_session(duration_s=2.0, seed=13)


def test_bench_matching_engine(benchmark):
    def run():
        engine = MatchingEngine()
        rng = np.random.default_rng(0)
        for i in range(2_000):
            side = Side.BID if rng.uniform() < 0.5 else Side.ASK
            price = 18_000 + int(rng.integers(-5, 6))
            engine.submit("ES", Order(side=side, price=price, quantity=3), i)
        return engine

    engine = benchmark(run)
    assert engine.book("ES").mid_price is not None


def test_bench_sbe_decode(benchmark):
    directory = SecurityDirectory()
    directory.register("ESU6")
    events = [
        BookUpdate("ESU6", 1, UpdateAction.NEW, Side.BID, 18_000 - i, 5, i)
        for i in range(8)
    ]
    frame = encode_udp_frame(encode_market_events(events, directory, 1))
    parser = PacketParser(directory)

    packet = benchmark(parser.parse_frame, frame)
    assert packet is not None
    assert len(packet.events) == 8


def test_bench_offload_engine(benchmark, tape):
    stats = NormalizationStats.fit(tape)

    def run():
        engine = OffloadEngine(stats=stats, window=100, store_tensors=True)
        query = None
        for i, tick in enumerate(tape[:300]):
            query = engine.on_tick(tick.snapshot, tick.timestamp, tick.timestamp + 10**9, i) or query
        return query

    query = benchmark(run)
    assert query is not None
    assert query.tensor.shape == (100, 40)


@pytest.mark.parametrize("name", ["vanilla_cnn", "translob", "deeplob"])
def test_bench_model_inference(benchmark, name):
    model = build_model(name)
    x = np.random.default_rng(0).standard_normal((1, *model.input_shape)).astype(np.float32)
    out = benchmark(model.forward, x)
    assert out.shape == (1, 3)


def test_bench_compiler(benchmark):
    from repro.compiler import compile_model
    from repro.nn import build_vanilla_cnn

    program = benchmark(lambda: compile_model(build_vanilla_cnn()))
    assert program.per_sample_cycles > 0


# ---------------------------------------------------------------------------
# LOB engines: reference vs struct-of-arrays, single-book and batched
# ---------------------------------------------------------------------------

# Pinned stream for BENCH_lob_speed.json: seed and size fixed so the
# deterministic sections (lob.* metric counters, replay stats) are
# byte-stable across machines and the CI diff can gate on them.
LOB_STREAM_SEED = 1
LOB_STREAM_OPS = 20_000

# Pinned session for BENCH_market_gen.json (same discipline: the tape
# digest and lob.* counters are deterministic, CI diffs them).
MARKET_GEN_SEED = 3
MARKET_GEN_DURATION_S = 6.0

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_U64 = 0xFFFFFFFFFFFFFFFF


def _fold_tape(tape) -> int:
    """Order-sensitive FNV fold of every snapshot checksum in ``tape``."""
    digest = _FNV_OFFSET
    for tick in tape:
        value = tick.snapshot.checksum()
        for _ in range(8):
            digest = ((digest ^ (value & 0xFF)) * _FNV_PRIME) & _U64
            value >>= 8
    return digest


def _lob_stream(seed: int, n_ops: int) -> list[tuple[int, ...]]:
    """A legal seeded submit/cancel stream, pre-filtered by the reference."""
    rng = np.random.default_rng(seed)
    rows = []
    live = []
    oid = 0
    for _ in range(n_ops):
        if rng.uniform() < 0.8 or not live:
            oid += 1
            tif = int(rng.choice([0, 1], p=[0.7, 0.3]))
            rows.append(
                (
                    OP_SUBMIT,
                    int(rng.integers(0, 2)),
                    0,
                    tif,
                    int(rng.integers(95, 106)),
                    int(rng.integers(1, 10)),
                    oid,
                )
            )
            if tif == int(TimeInForce.DAY):
                live.append(oid)
        else:
            victim = live.pop(int(rng.integers(0, len(live))))
            rows.append((OP_CANCEL, 0, 0, 0, 0, 0, victim))
    engine = MatchingEngine()
    kept = []
    for row in rows:
        try:
            _lob_apply(engine, row)
        except (OrderBookError, MatchingError):
            continue
        kept.append(row)
    return kept


def _lob_apply(engine, row):
    kind, side, otype, tif, price, qty, order_id = row
    if kind == OP_SUBMIT:
        return engine.submit(
            "ES",
            Order(
                side=Side(side),
                price=price,
                quantity=qty,
                order_id=order_id,
                order_type=OrderType(otype),
                tif=TimeInForce(tif),
                owner="bench",
            ),
            0,
        )
    return engine.cancel("ES", order_id, 0)


def _lob_per_op_rate(engine_factory, rows) -> float:
    best = 0.0
    for _ in range(3):
        engine = engine_factory()
        t0 = time.perf_counter()
        for row in rows:
            _lob_apply(engine, row)
        best = max(best, len(rows) / (time.perf_counter() - t0))
    return best


def test_bench_lob_single_book(benchmark, record_table):
    """Reference per-op vs array per-op vs array batch kernel ops/s.

    Gate: the batch kernel must clear 5x the reference engine (measured
    ~15x; 5x leaves shared-runner headroom), with per-op/batch parity
    re-asserted on the same stream.
    """
    rows = _lob_stream(LOB_STREAM_SEED, LOB_STREAM_OPS)
    batch = OpBatch.from_rows(rows)
    rates = {}

    def measure():
        rates["reference_per_op"] = _lob_per_op_rate(MatchingEngine, rows)
        rates["array_per_op"] = _lob_per_op_rate(ArrayMatchingEngine, rows)
        best = 0.0
        for _ in range(3):
            engine = ArrayMatchingEngine()
            t0 = time.perf_counter()
            engine.replay_ops("ES", batch)
            best = max(best, len(rows) / (time.perf_counter() - t0))
        rates["array_batch"] = best
        return rates

    benchmark.pedantic(measure, rounds=1, iterations=1)

    # Deterministic manifest run: the array engine's lob.* counters over
    # the pinned stream (per-op, so the high-water gauges see every op).
    registry = MetricRegistry()
    per_op = ArrayMatchingEngine(metrics=registry)
    for row in rows:
        _lob_apply(per_op, row)
    replayed = ArrayMatchingEngine()
    stats = replayed.replay_ops("ES", batch)
    assert stats.final_sequence == per_op._sequence
    assert replayed.book("ES").bids.top(25) == per_op.book("ES").bids.top(25)
    assert replayed.book("ES").asks.top(25) == per_op.book("ES").asks.top(25)

    speedup_batch = rates["array_batch"] / rates["reference_per_op"]
    speedup_per_op = rates["array_per_op"] / rates["reference_per_op"]
    record_table(
        "lob_speed",
        "Single-book LOB ops/s (20k-op seeded submit/cancel stream)\n"
        f"  reference per-op: {rates['reference_per_op']:,.0f}\n"
        f"  array per-op:     {rates['array_per_op']:,.0f}"
        f"  ({speedup_per_op:.1f}x)\n"
        f"  array batch:      {rates['array_batch']:,.0f}"
        f"  ({speedup_batch:.1f}x)",
    )
    manifest = build_manifest(
        run={
            "system": "lob",
            "bench": "lob_speed",
            "stream_seed": LOB_STREAM_SEED,
            "stream_ops": len(rows),
        },
        registry=registry,
        config={"engine": "array", "symbol": "ES"},
        seeds={"stream": LOB_STREAM_SEED},
        perf={
            "reference_ops_per_s": rates["reference_per_op"],
            "array_per_op_ops_per_s": rates["array_per_op"],
            "array_batch_ops_per_s": rates["array_batch"],
            "batch_speedup_vs_reference": speedup_batch,
        },
    )
    manifest["result"] = {
        "n_ops": stats.n_ops,
        "n_fills": stats.n_fills,
        "traded_quantity": stats.traded_quantity,
        "notional": stats.notional,
        "rejected": stats.rejected,
        "final_sequence": stats.final_sequence,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    write_manifest(RESULTS_DIR / "BENCH_lob_speed.json", manifest)
    # Calibrated gate: measured ~15x on the reference container.
    assert speedup_batch >= 5.0, rates


def test_bench_market_gen(benchmark, record_table, monkeypatch):
    """Market generation: fast path vs reference loop, plus book hot paths.

    Gates (calibrated on the reference container): the batch-kernel
    generation loop must clear 3x the reference loop's ticks/s
    (measured ~3.9x), and the list-backed array book's per-op rate must
    at least match the object-per-order reference (measured ~1.1x; it
    was 0.67x before the scalar-tax removal).  Byte-identity of the two
    loops' tapes and metric registries is re-asserted here on the pinned
    session before anything is persisted.
    """
    rows = _lob_stream(LOB_STREAM_SEED, LOB_STREAM_OPS)
    rates = {}

    def measure():
        # Interleave fast/reference rounds and gate on the best *paired*
        # ratio: a container-wide load spike slows both halves of a pair
        # about equally, so the ratio survives noise that would sink a
        # best-of-phase comparison.
        gen = {"fast": [], "reference": []}
        for _ in range(5):
            for value, key in (("1", "fast"), ("0", "reference")):
                monkeypatch.setenv("REPRO_MARKET_FAST", value)
                t0 = time.perf_counter()
                tape = generate_session(
                    duration_s=MARKET_GEN_DURATION_S, seed=MARKET_GEN_SEED
                )
                gen[key].append(len(tape) / (time.perf_counter() - t0))
        rates["fast_ticks_per_s"] = max(gen["fast"])
        rates["reference_ticks_per_s"] = max(gen["reference"])
        rates["gen_speedup"] = max(
            fast / ref for fast, ref in zip(gen["fast"], gen["reference"])
        )
        per_op = {"reference": [], "array": []}
        for _ in range(3):
            per_op["reference"].append(_lob_per_op_rate(MatchingEngine, rows))
            per_op["array"].append(_lob_per_op_rate(ArrayMatchingEngine, rows))
        rates["reference_per_op"] = max(per_op["reference"])
        rates["array_per_op"] = max(per_op["array"])
        rates["per_op_ratio"] = max(
            arr / ref for arr, ref in zip(per_op["array"], per_op["reference"])
        )
        # Depth-snapshot capture over a populated array book.
        engine = ArrayMatchingEngine()
        for row in rows[:2000]:
            _lob_apply(engine, row)
        book = engine.book("ES")
        t0 = time.perf_counter()
        for _ in range(5_000):
            DepthSnapshot.capture(book, timestamp=0)
        rates["snapshot_capture_us"] = (time.perf_counter() - t0) / 5_000 * 1e6
        return rates

    benchmark.pedantic(measure, rounds=1, iterations=1)

    # Deterministic manifest run: the pinned session under both paths
    # must agree checksum-for-checksum and metric-for-metric.
    monkeypatch.setenv("REPRO_MARKET_FAST", "1")
    registry = MetricRegistry()
    tape_fast = MarketSimulator(
        MarketConfig(), seed=MARKET_GEN_SEED, metrics=registry
    ).generate(MARKET_GEN_DURATION_S)
    monkeypatch.setenv("REPRO_MARKET_FAST", "0")
    reference_registry = MetricRegistry()
    tape_reference = MarketSimulator(
        MarketConfig(), seed=MARKET_GEN_SEED, metrics=reference_registry
    ).generate(MARKET_GEN_DURATION_S)
    digest = _fold_tape(tape_fast)
    assert digest == _fold_tape(tape_reference)
    assert registry.public_snapshot() == reference_registry.public_snapshot()

    speedup = rates["gen_speedup"]
    per_op_ratio = rates["per_op_ratio"]
    record_table(
        "market_gen",
        f"Market generation ({MARKET_GEN_DURATION_S:.0f}s session, "
        f"seed {MARKET_GEN_SEED}, {len(tape_fast)} ticks)\n"
        f"  reference loop: {rates['reference_ticks_per_s']:,.0f} ticks/s\n"
        f"  fast path:      {rates['fast_ticks_per_s']:,.0f} ticks/s"
        f"  ({speedup:.1f}x)\n"
        f"  per-op book:    array {rates['array_per_op']:,.0f} vs "
        f"reference {rates['reference_per_op']:,.0f} ops/s"
        f"  ({per_op_ratio:.2f}x)\n"
        f"  snapshot capture: {rates['snapshot_capture_us']:.1f} us",
    )
    # The committed baseline's env section is all-null; drop the values
    # this test pinned so the manifests diff clean.
    monkeypatch.delenv("REPRO_MARKET_FAST", raising=False)
    manifest = build_manifest(
        run={
            "system": "market",
            "bench": "market_gen",
            "seed": MARKET_GEN_SEED,
            "duration_s": MARKET_GEN_DURATION_S,
        },
        registry=registry,
        config={"engine": "array", "symbol": "ESU6"},
        seeds={"session": MARKET_GEN_SEED, "lob_stream": LOB_STREAM_SEED},
        perf={
            "fast_ticks_per_s": rates["fast_ticks_per_s"],
            "reference_ticks_per_s": rates["reference_ticks_per_s"],
            "fast_speedup_vs_reference": speedup,
            "array_per_op_ops_per_s": rates["array_per_op"],
            "reference_per_op_ops_per_s": rates["reference_per_op"],
            "per_op_ratio_vs_reference": per_op_ratio,
            "snapshot_capture_us": rates["snapshot_capture_us"],
        },
    )
    manifest["result"] = {"ticks": len(tape_fast), "tape_digest": f"{digest:016x}"}
    RESULTS_DIR.mkdir(exist_ok=True)
    write_manifest(RESULTS_DIR / "BENCH_market_gen.json", manifest)
    # Calibrated gates; see the docstring for measured headroom.
    assert speedup >= 3.0, rates
    assert per_op_ratio >= 1.0, rates


def test_bench_lob_batched_scaling(benchmark, record_table):
    """Adding books to BatchedBooks must cost well under linear."""

    def step_cost(n_books, n_steps=60):
        rng = np.random.default_rng(5)
        books = BatchedBooks(n_books)
        all_ops = []
        for _ in range(n_steps):
            kind = rng.choice(
                [OP_LIMIT, OP_MARKET, OP_REDUCE, OP_NOP],
                size=n_books,
                p=[0.65, 0.1, 0.15, 0.1],
            ).astype(np.int64)
            all_ops.append(
                BookOps(
                    kind=kind,
                    side=rng.integers(0, 2, n_books).astype(np.int64),
                    price=rng.integers(95, 106, n_books).astype(np.int64),
                    qty=rng.integers(1, 10, n_books).astype(np.int64),
                    tif=rng.choice([0, 1, 2], size=n_books, p=[0.6, 0.3, 0.1]).astype(
                        np.int64
                    ),
                )
            )
        t0 = time.perf_counter()
        for ops in all_ops:
            books.step(ops)
        return (time.perf_counter() - t0) / n_steps

    costs = {}

    def measure():
        costs["single_s"] = min(step_cost(1) for _ in range(3))
        costs["wide_s"] = min(step_cost(64) for _ in range(3))
        return costs

    benchmark.pedantic(measure, rounds=1, iterations=1)
    per_book_ratio = (costs["wide_s"] / 64) / costs["single_s"]
    record_table(
        "lob_batched",
        "BatchedBooks step cost (random op per book per step)\n"
        f"  1 book:   {costs['single_s'] * 1e6:,.0f} us/step\n"
        f"  64 books: {costs['wide_s'] * 1e6:,.0f} us/step\n"
        f"  per-book cost vs single: {per_book_ratio:.3f}x (sublinear < 0.5)",
    )
    payload = {
        "batched_single_step_s": costs["single_s"],
        "batched_wide_step_s": costs["wide_s"],
        "batched_n_books": 64,
        "batched_per_book_ratio": per_book_ratio,
    }
    path = RESULTS_DIR / "BENCH_lob_speed.json"
    if path.exists():
        import json

        manifest = json.loads(path.read_text())
        manifest.setdefault("perf", {}).update(payload)
        write_manifest(path, manifest)
    # Calibrated gate: measured ~0.05x; 0.5 keeps wide noise headroom.
    assert per_book_ratio < 0.5, costs
