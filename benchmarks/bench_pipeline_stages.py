"""Micro-benchmarks of the functional pipeline stages (wall-clock of our
Python implementations — useful for harness health, not paper numbers)."""

import numpy as np
import pytest

from repro.lob import MatchingEngine, Order, Side
from repro.market import generate_session
from repro.nn import build_model
from repro.pipeline import NormalizationStats, OffloadEngine
from repro.protocol import (
    PacketParser,
    SecurityDirectory,
    encode_market_events,
    encode_udp_frame,
)
from repro.lob.events import BookUpdate, UpdateAction


@pytest.fixture(scope="module")
def tape():
    return generate_session(duration_s=2.0, seed=13)


def test_bench_matching_engine(benchmark):
    def run():
        engine = MatchingEngine()
        rng = np.random.default_rng(0)
        for i in range(2_000):
            side = Side.BID if rng.uniform() < 0.5 else Side.ASK
            price = 18_000 + int(rng.integers(-5, 6))
            engine.submit("ES", Order(side=side, price=price, quantity=3), i)
        return engine

    engine = benchmark(run)
    assert engine.book("ES").mid_price is not None


def test_bench_sbe_decode(benchmark):
    directory = SecurityDirectory()
    directory.register("ESU6")
    events = [
        BookUpdate("ESU6", 1, UpdateAction.NEW, Side.BID, 18_000 - i, 5, i)
        for i in range(8)
    ]
    frame = encode_udp_frame(encode_market_events(events, directory, 1))
    parser = PacketParser(directory)

    packet = benchmark(parser.parse_frame, frame)
    assert packet is not None
    assert len(packet.events) == 8


def test_bench_offload_engine(benchmark, tape):
    stats = NormalizationStats.fit(tape)

    def run():
        engine = OffloadEngine(stats=stats, window=100, store_tensors=True)
        query = None
        for i, tick in enumerate(tape[:300]):
            query = engine.on_tick(tick.snapshot, tick.timestamp, tick.timestamp + 10**9, i) or query
        return query

    query = benchmark(run)
    assert query is not None
    assert query.tensor.shape == (100, 40)


@pytest.mark.parametrize("name", ["vanilla_cnn", "translob", "deeplob"])
def test_bench_model_inference(benchmark, name):
    model = build_model(name)
    x = np.random.default_rng(0).standard_normal((1, *model.input_shape)).astype(np.float32)
    out = benchmark(model.forward, x)
    assert out.shape == (1, 3)


def test_bench_compiler(benchmark):
    from repro.compiler import compile_model
    from repro.nn import build_vanilla_cnn

    program = benchmark(lambda: compile_model(build_vanilla_cnn()))
    assert program.per_sample_cycles > 0
