"""Property-based tests (hypothesis) for order book / matching invariants."""

from hypothesis import given, settings, strategies as st

from repro.lob import MatchingEngine, Order, OrderType, Side, TimeInForce


# One random engine operation, encoded as a tuple the executor interprets.
_submit = st.tuples(
    st.just("submit"),
    st.sampled_from([Side.BID, Side.ASK]),
    st.integers(min_value=90, max_value=110),  # price ticks near the touch
    st.integers(min_value=1, max_value=20),  # quantity
    st.sampled_from([TimeInForce.DAY, TimeInForce.IOC, TimeInForce.FOK]),
)
_market = st.tuples(
    st.just("market"),
    st.sampled_from([Side.BID, Side.ASK]),
    st.integers(min_value=1, max_value=20),
)
_cancel = st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=200))

operations = st.lists(st.one_of(_submit, _market, _cancel), min_size=1, max_size=80)


def run_ops(ops):
    """Execute a random operation sequence, tracking resting order ids."""
    engine = MatchingEngine()
    resting: list[int] = []
    all_fills = []
    submitted_volume = 0
    timestamp = 0
    for op in ops:
        timestamp += 1
        if op[0] == "submit":
            __, side, price, qty, tif = op
            order = Order(side=side, price=price, quantity=qty, tif=tif)
            result = engine.submit("ES", order, timestamp)
            submitted_volume += qty if result.accepted else 0
            all_fills.extend(result.fills)
            if result.accepted and order.remaining > 0 and tif is TimeInForce.DAY:
                resting.append(order.order_id)
        elif op[0] == "market":
            __, side, qty = op
            order = Order(side=side, price=1, quantity=qty, order_type=OrderType.MARKET)
            result = engine.submit("ES", order, timestamp)
            submitted_volume += qty
            all_fills.extend(result.fills)
        else:  # cancel a random previously-rested order (may already be gone)
            __, idx = op
            if resting:
                order_id = resting[idx % len(resting)]
                if order_id in engine.book("ES"):
                    engine.cancel("ES", order_id, timestamp)
    return engine, all_fills, submitted_volume


@given(operations)
@settings(max_examples=150, deadline=None)
def test_book_never_crossed(ops):
    engine, __, __2 = run_ops(ops)
    assert not engine.book("ES").is_crossed()


@given(operations)
@settings(max_examples=150, deadline=None)
def test_level_volumes_match_order_remainders(ops):
    engine, __, __2 = run_ops(ops)
    book = engine.book("ES")
    for side in (book.bids, book.asks):
        for level in side.iter_best_first():
            assert level.volume == sum(o.remaining for o in level)
            assert level.volume > 0  # empty levels must have been dropped


@given(operations)
@settings(max_examples=150, deadline=None)
def test_fills_at_or_inside_limit(ops):
    """Every fill executes at the maker's price, within the taker's limit."""
    __, fills, __2 = run_ops(ops)
    for fill in fills:
        assert fill.quantity > 0


@given(operations)
@settings(max_examples=150, deadline=None)
def test_volume_conservation(ops):
    """Resting + filled*2 + discarded == total submitted (each fill consumes
    one contract from each side)."""
    engine, fills, submitted = run_ops(ops)
    book = engine.book("ES")
    resting = book.bids.total_volume() + book.asks.total_volume()
    filled = sum(f.quantity for f in fills)
    # Cancels and IOC/market remainders discard volume, so resting + 2*filled
    # can never exceed what was submitted.
    assert resting + 2 * filled <= submitted


@given(operations)
@settings(max_examples=100, deadline=None)
def test_price_index_sorted_and_consistent(ops):
    engine, __, __2 = run_ops(ops)
    book = engine.book("ES")
    for side in (book.bids, book.asks):
        prices = [level.price for level in side.iter_best_first()]
        if side.side is Side.BID:
            assert prices == sorted(prices, reverse=True)
        else:
            assert prices == sorted(prices)
        assert len(prices) == len(set(prices))


@given(operations)
@settings(max_examples=100, deadline=None)
def test_snapshot_feature_vector_shape(ops):
    from repro.lob import DepthSnapshot

    engine, __, __2 = run_ops(ops)
    snap = DepthSnapshot.capture(engine.book("ES"), timestamp=99)
    vec = snap.feature_vector()
    assert vec.shape == (40,)
    assert vec.dtype.name == "float32"
    # Ask prices strictly above bid prices whenever both sides are live.
    if snap.bids and snap.asks:
        assert snap.best_ask > snap.best_bid
