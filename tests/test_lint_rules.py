"""Rule-by-rule coverage for ``repro.lint``.

Each rule is driven over inline fixture snippets: a positive case (the
violation fires), a negative case (the sanctioned idiom stays clean) and
a suppression case (the directive downgrades the finding rather than
hiding it).  The framework itself — directive parsing, alias expansion,
ordering, CLI exit codes — is covered at the end.
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.lint import Finding, all_rules, lint_source
from repro.lint.__main__ import main as lint_main

SIM_PATH = "src/repro/sim/fixture.py"
PLAIN_PATH = "src/repro/lob/fixture.py"


def run(source: str, path: str = PLAIN_PATH, codes: list[str] | None = None):
    return lint_source(textwrap.dedent(source), path, codes)


def visible(findings: list[Finding]) -> list[Finding]:
    return [f for f in findings if not f.suppressed]


def codes_of(findings: list[Finding]) -> list[str]:
    return [f.rule for f in visible(findings)]


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


def test_registry_has_the_per_file_rules():
    assert sorted(all_rules()) == ["RL001", "RL002", "RL003", "RL004", "RL005"]


def test_registry_has_the_project_rules():
    from repro.lint.project_rules import all_project_rules

    assert sorted(all_project_rules()) == ["RL006", "RL007", "RL008", "RL009"]


# ---------------------------------------------------------------------------
# RL001 — no nondeterminism in simulator packages
# ---------------------------------------------------------------------------


def test_rl001_flags_wall_clock_in_sim_scope():
    findings = run(
        """
        import time

        def stamp():
            return time.perf_counter_ns()
        """,
        path=SIM_PATH,
    )
    assert codes_of(findings) == ["RL001"]
    assert "time.perf_counter_ns" in findings[0].message


def test_rl001_resolves_import_aliases():
    findings = run(
        """
        import numpy as np

        def draw():
            return np.random.rand()
        """,
        path=SIM_PATH,
    )
    assert codes_of(findings) == ["RL001"]
    assert "numpy.random.rand" in findings[0].message


def test_rl001_allows_seeded_generators():
    findings = run(
        """
        import numpy as np
        import random

        def make(seed):
            return np.random.default_rng(seed), random.Random(seed)
        """,
        path=SIM_PATH,
    )
    assert codes_of(findings) == []


def test_rl001_flags_from_import_of_global_rng():
    findings = run("from random import randint\n", path=SIM_PATH)
    assert codes_of(findings) == ["RL001"]


def test_rl001_out_of_scope_paths_are_clean():
    source = "import time\n\nT0 = time.perf_counter()\n"
    assert codes_of(run(source, path="benchmarks/fixture.py")) == []
    assert codes_of(run(source, path=SIM_PATH)) == ["RL001"]


def test_rl001_line_suppression():
    findings = run(
        """
        import time

        def stamp():
            return time.time_ns()  # repro-lint: disable=RL001
        """,
        path=SIM_PATH,
    )
    assert codes_of(findings) == []
    assert [f.rule for f in findings if f.suppressed] == ["RL001"]


# ---------------------------------------------------------------------------
# RL002 — unit-suffix safety
# ---------------------------------------------------------------------------


def test_rl002_flags_mixed_suffix_arithmetic():
    findings = run("total = deadline_ns + horizon_s\n", codes=["RL002"])
    assert codes_of(findings) == ["RL002"]
    assert "deadline_ns [ns]" in findings[0].message
    assert "horizon_s [s]" in findings[0].message


def test_rl002_flags_mixed_suffix_comparison_chain():
    findings = run("ok = start_ns < cutoff_ms < end_ns\n", codes=["RL002"])
    # Both adjacent pairs disagree: ns vs ms, ms vs ns.
    assert codes_of(findings) == ["RL002", "RL002"]


def test_rl002_same_unit_and_unsuffixed_operands_are_clean():
    findings = run(
        """
        total_ns = start_ns + delta_ns
        scaled = value * freq_hz
        plain = count + 1
        """,
        codes=["RL002"],
    )
    assert codes_of(findings) == []


def test_rl002_flags_wrong_unit_into_helper():
    findings = run("x = ns_to_us(delay_ms)\n", codes=["RL002"])
    assert codes_of(findings) == ["RL002"]
    assert "expects a value in [ns]" in findings[0].message


def test_rl002_flags_float_literal_to_ns_helper():
    findings = run("x = ns_to_sec(1.5)\n", codes=["RL002"])
    assert codes_of(findings) == ["RL002"]
    assert "int-ns convention" in findings[0].message
    # Integer literals are fine.
    assert codes_of(run("x = ns_to_sec(1500)\n", codes=["RL002"])) == []


def test_rl002_suppression():
    findings = run(
        "total = deadline_ns + horizon_s  # repro-lint: disable=RL002\n",
        codes=["RL002"],
    )
    assert codes_of(findings) == []
    assert [f.rule for f in findings if f.suppressed] == ["RL002"]


# ---------------------------------------------------------------------------
# RL003 — env reads through repro.envcfg
# ---------------------------------------------------------------------------


def test_rl003_flags_direct_read_of_registered_variable():
    findings = run(
        """
        import os

        fast = os.environ.get("REPRO_FAST_LOOP")
        """,
        codes=["RL003"],
    )
    assert codes_of(findings) == ["RL003"]
    assert "REPRO_FAST_LOOP" in findings[0].message
    assert "repro.envcfg" in findings[0].message


def test_rl003_flags_unregistered_repro_variable_with_declare_hint():
    findings = run(
        """
        import os

        x = os.getenv("REPRO_TOTALLY_NEW")
        """,
        codes=["RL003"],
    )
    assert codes_of(findings) == ["RL003"]
    assert "declare it in repro.envcfg" in findings[0].message


def test_rl003_resolves_module_level_key_constants():
    findings = run(
        """
        import os

        MY_ENV = "REPRO_TRACE_DIR"
        value = os.environ.get(MY_ENV)
        """,
        codes=["RL003"],
    )
    assert codes_of(findings) == ["RL003"]


def test_rl003_env_suffix_heuristic_catches_imported_keys():
    findings = run(
        """
        import os
        from somewhere import TRACE_DIR_ENV

        value = os.environ.get(TRACE_DIR_ENV)
        """,
        codes=["RL003"],
    )
    assert codes_of(findings) == ["RL003"]
    assert "TRACE_DIR_ENV" in findings[0].message


def test_rl003_subscript_read_flagged_but_write_allowed():
    source = """
    import os

    os.environ["REPRO_FAST_LOOP"] = "0"
    value = os.environ["REPRO_FAST_LOOP"]
    """
    findings = run(source, codes=["RL003"])
    assert codes_of(findings) == ["RL003"]  # only the Load, not the Store


def test_rl003_non_repro_reads_are_clean():
    findings = run(
        """
        import os

        home = os.environ.get("HOME")
        path = os.getenv("PATH", "")
        """,
        codes=["RL003"],
    )
    assert codes_of(findings) == []


def test_rl003_file_suppression():
    findings = run(
        """
        # repro-lint: file-disable=RL003
        import os

        a = os.environ.get("REPRO_FAST_LOOP")
        b = os.getenv("REPRO_TRACE_DIR")
        """,
        codes=["RL003"],
    )
    assert codes_of(findings) == []
    assert sorted(f.rule for f in findings if f.suppressed) == ["RL003", "RL003"]


# ---------------------------------------------------------------------------
# RL004 — hot-path hygiene
# ---------------------------------------------------------------------------

def hot(snippet: str) -> str:
    return "from repro.hotpath import hot_path\n" + textwrap.dedent(snippet)


def test_rl004_flags_comprehension_and_fstring():
    findings = run(
        hot(
            """
            @hot_path
            def push(values):
                squares = [v * v for v in values]
                return f"{squares}"
            """
        ),
        codes=["RL004"],
    )
    messages = [f.message for f in visible(findings)]
    assert len(messages) == 2
    assert any("comprehension" in m for m in messages)
    assert any("f-string" in m for m in messages)


def test_rl004_flags_builtin_allocation_calls():
    findings = run(
        hot(
            """
            @hot_path
            def push(x):
                return dict(a=x)
            """
        ),
        codes=["RL004"],
    )
    assert codes_of(findings) == ["RL004"]
    assert "dict() construction" in findings[0].message


def test_rl004_unguarded_logging_flagged_guarded_allowed():
    flagged = run(
        hot(
            """
            @hot_path
            def push(logger, x):
                logger.debug("saw %s", x)
            """
        ),
        codes=["RL004"],
    )
    assert codes_of(flagged) == ["RL004"]
    assert "isEnabledFor" in flagged[0].message

    guarded = run(
        hot(
            """
            import logging

            @hot_path
            def push(logger, x):
                if logger.isEnabledFor(logging.DEBUG):
                    logger.debug("saw %s", x)
            """
        ),
        codes=["RL004"],
    )
    assert codes_of(guarded) == []


def test_rl004_unmarked_functions_are_exempt():
    findings = run(
        """
        def cold(values):
            return [v * v for v in values]
        """,
        codes=["RL004"],
    )
    assert codes_of(findings) == []


def test_rl004_manifest_matches_method_by_qualname():
    # Telemetry.sample_power is in repro.hotpath.MANIFEST for this path.
    findings = run(
        """
        class Telemetry:
            def sample_power(self, x):
                return {k: x for k in ("a",)}

            def cold(self, x):
                return {k: x for k in ("a",)}
        """,
        path="src/repro/telemetry/__init__.py",
        codes=["RL004"],
    )
    assert codes_of(findings) == ["RL004"]
    assert "sample_power" in findings[0].message


def test_rl004_suppression():
    findings = run(
        hot(
            """
            @hot_path
            def push(x):
                return dict(a=x)  # repro-lint: disable=RL004
            """
        ),
        codes=["RL004"],
    )
    assert codes_of(findings) == []
    assert [f.rule for f in findings if f.suppressed] == ["RL004"]


# ---------------------------------------------------------------------------
# RL005 — __all__ consistency
# ---------------------------------------------------------------------------


def test_rl005_flags_phantom_entry():
    findings = run(
        """
        __all__ = ["real", "phantom"]

        def real():
            return 1
        """,
        codes=["RL005"],
    )
    assert codes_of(findings) == ["RL005"]
    assert "'phantom'" in findings[0].message


def test_rl005_flags_public_def_missing_from_all():
    findings = run(
        """
        __all__ = ["listed"]

        def listed():
            return 1

        def unlisted():
            return 2

        def _private():
            return 3
        """,
        codes=["RL005"],
    )
    assert codes_of(findings) == ["RL005"]
    assert "unlisted" in findings[0].message


def test_rl005_consistent_module_is_clean():
    findings = run(
        """
        from typing import TYPE_CHECKING

        __all__ = ["Widget", "CONST", "build"]

        CONST = 7

        class Widget:
            pass

        def build():
            return Widget()

        if TYPE_CHECKING:
            from somewhere import Hint  # noqa: F401
        """,
        codes=["RL005"],
    )
    assert codes_of(findings) == []


def test_rl005_no_all_or_star_import_means_silent():
    assert codes_of(run("def anything():\n    pass\n", codes=["RL005"])) == []
    assert (
        codes_of(
            run(
                '__all__ = ["x"]\nfrom os.path import *\n',
                codes=["RL005"],
            )
        )
        == []
    )


def test_rl005_suppression():
    findings = run(
        """
        __all__ = ["ghost"]  # repro-lint: disable=RL005
        """,
        codes=["RL005"],
    )
    assert codes_of(findings) == []
    assert [f.rule for f in findings if f.suppressed] == ["RL005"]


# ---------------------------------------------------------------------------
# framework: directives, ordering, CLI
# ---------------------------------------------------------------------------


def test_standalone_directive_covers_next_statement():
    findings = run(
        """
        import time

        def stamp():
            # repro-lint: disable=RL001
            return time.time()
        """,
        path=SIM_PATH,
    )
    assert codes_of(findings) == []
    assert [f.rule for f in findings if f.suppressed] == ["RL001"]


def test_disable_all_suppresses_every_rule():
    findings = run(
        """
        # repro-lint: file-disable=all
        import time

        t = time.time()
        total = a_ns + b_s
        """,
        path=SIM_PATH,
    )
    assert codes_of(findings) == []
    assert len(findings) >= 2 and all(f.suppressed for f in findings)


def test_findings_sorted_by_path_line_rule():
    findings = run(
        """
        import time

        total = a_ns + b_s
        t = time.time()
        """,
        path=SIM_PATH,
    )
    keys = [(f.path, f.line, f.rule) for f in findings]
    assert keys == sorted(keys)


def test_cli_exit_codes_and_json(tmp_path: Path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("total = deadline_ns + horizon_s\n")
    clean = tmp_path / "clean.py"
    clean.write_text("total_ns = a_ns + b_ns\n")

    assert lint_main([str(clean)]) == 0
    capsys.readouterr()

    assert lint_main([str(dirty), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["rule"] == "RL002"
    assert payload[0]["suppressed"] is False

    assert lint_main([str(tmp_path / "missing.py")]) == 2


def test_cli_stats_payload(tmp_path: Path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(
        "total = deadline_ns + horizon_s  # repro-lint: disable=RL002\n"
        "worse = a_ns + b_s\n"
    )
    stats_file = tmp_path / "stats.json"
    assert lint_main([str(dirty), "--stats", str(stats_file)]) == 1
    capsys.readouterr()
    stats = json.loads(stats_file.read_text())
    assert stats["rules"]["RL002"] == {"unsuppressed": 1, "suppressed": 1}
    assert stats["total_unsuppressed"] == 1
    assert stats["total_suppressed"] == 1
    assert stats["files_scanned"] == 1


def test_repo_is_lint_clean():
    """The PR's acceptance bar: the whole repo lints clean from the root."""
    repo_root = Path(__file__).resolve().parent.parent
    result = subprocess.run(
        [sys.executable, "-m", "repro.lint"],
        cwd=repo_root,
        capture_output=True,
        text=True,
        env={
            "PYTHONPATH": str(repo_root / "src"),
            "PATH": "/usr/bin:/bin:/usr/local/bin",
        },
    )
    assert result.returncode == 0, result.stdout + result.stderr


# ---------------------------------------------------------------------------
# RL004 — decorator resolution and manifest addressing (PR 10 fixes)
# ---------------------------------------------------------------------------


def test_rl004_recognizes_aliased_hot_path_import():
    findings = run(
        """
        from repro.hotpath import hot_path as hp

        @hp
        def step():
            return [i for i in range(4)]
        """,
        path=SIM_PATH,
    )
    assert codes_of(findings) == ["RL004"]


def test_rl004_recognizes_attribute_access_decorator():
    findings = run(
        """
        import repro.hotpath as hotpath

        @hotpath.hot_path
        def step():
            return f"{1}"
        """,
        path=SIM_PATH,
    )
    assert codes_of(findings) == ["RL004"]


def test_rl004_manifest_dotted_module_addressing(monkeypatch):
    import repro.hotpath as hotpath_mod

    monkeypatch.setattr(
        hotpath_mod,
        "MANIFEST",
        frozenset({"repro.sim.fixture::Collector.tick"}),
    )
    findings = run(
        """
        class Collector:
            def tick(self):
                return dict(a=1)
        """,
        path=SIM_PATH,
    )
    assert codes_of(findings) == ["RL004"]


# ---------------------------------------------------------------------------
# suppression edge cases (PR 10)
# ---------------------------------------------------------------------------


def test_multi_rule_disable_on_one_line():
    findings = run(
        """
        from repro.hotpath import hot_path

        @hot_path
        def step(deadline_ns, horizon_s):
            return deadline_ns + horizon_s + len([x for x in ()])  # repro-lint: disable=RL002,RL004
        """,
        path=SIM_PATH,
    )
    assert codes_of(findings) == []
    suppressed = sorted({f.rule for f in findings if f.suppressed})
    assert suppressed == ["RL002", "RL004"]


def test_multi_rule_disable_only_silences_named_rules():
    findings = run(
        """
        import time

        def stamp(deadline_ns, horizon_s):
            return deadline_ns + horizon_s + time.time()  # repro-lint: disable=RL002
        """,
        path=SIM_PATH,
    )
    # RL002 silenced, RL001 still visible on the same line.
    assert codes_of(findings) == ["RL001"]
    assert [f.rule for f in findings if f.suppressed] == ["RL002"]


def test_file_disable_counts_in_stats(tmp_path: Path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(
        "# repro-lint: file-disable=RL002\n"
        "total = deadline_ns + horizon_s\n"
        "more = a_ns + b_s\n"
    )
    stats_file = tmp_path / "stats.json"
    # Everything suppressed -> exit 0, but --stats still records both.
    assert lint_main([str(dirty), "--stats", str(stats_file)]) == 0
    capsys.readouterr()
    stats = json.loads(stats_file.read_text())
    assert stats["rules"]["RL002"] == {"unsuppressed": 0, "suppressed": 2}
    assert stats["total_unsuppressed"] == 0


def test_strict_suppressions_flags_stale_directive(tmp_path: Path, capsys):
    stale = tmp_path / "stale.py"
    stale.write_text(
        "# repro-lint: disable=RL001\n"
        "x_ns = 1\n"
    )
    assert lint_main([str(stale)]) == 0
    capsys.readouterr()
    assert lint_main([str(stale), "--strict-suppressions"]) == 1
    out = capsys.readouterr().out
    assert "stale suppression" in out and "RL001" in out


def test_strict_suppressions_keeps_live_directive(tmp_path: Path, capsys):
    live = tmp_path / "live.py"
    live.write_text("total = deadline_ns + horizon_s  # repro-lint: disable=RL002\n")
    assert lint_main([str(live), "--strict-suppressions"]) == 0
    capsys.readouterr()
