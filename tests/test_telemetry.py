"""Tests for the telemetry subsystem: registry, spans, JSONL, report."""

import pytest

from repro.baselines import lighttrader_profile
from repro.pipeline.latency import DEFAULT_STAGES
from repro.pipeline.offload import Query
from repro.sim import Backtester, SimConfig, synthetic_workload
from repro.telemetry import (
    ALL_STAGES,
    FIXED_PRE_STAGES,
    NULL_REGISTRY,
    Registry,
    Telemetry,
    TraceWriter,
    attribute_miss,
    completed_query_trace,
    dropped_query_trace,
    read_events,
)
from repro.telemetry.registry import Histogram
from repro.telemetry.report import main as report_main, render_report


class TestHistogram:
    def test_bucket_edges_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("h", edges=(10.0, 10.0, 20.0))
        with pytest.raises(ValueError):
            Histogram("h", edges=(10.0,))

    def test_values_land_in_the_right_buckets(self):
        h = Histogram("h", edges=(10.0, 100.0, 1000.0))
        h.record(5.0)  # <= 10 → bucket 0
        h.record(10.0)  # boundary is inclusive on the low bucket
        h.record(50.0)  # bucket 1
        h.record(2000.0)  # beyond the last edge → overflow
        assert h.counts == [2, 1, 0]
        assert h.overflow == 1
        assert h.count == 4
        assert h.mean == pytest.approx((5 + 10 + 50 + 2000) / 4)

    def test_percentiles_from_buckets(self):
        h = Histogram("h", edges=(10.0, 100.0, 1000.0))
        for __ in range(50):
            h.record(5.0)
        for __ in range(50):
            h.record(500.0)
        assert 5.0 <= h.percentile(50) <= 10.0
        assert 100.0 < h.percentile(99) <= 500.0
        # Quantiles never leave the observed range.
        assert h.percentile(0) >= 5.0
        assert h.percentile(100) <= 500.0

    def test_empty_histogram(self):
        h = Histogram("h", edges=(1.0, 2.0))
        assert h.count == 0
        assert h.percentile(50) != h.percentile(50)  # NaN
        assert h.to_dict()["count"] == 0

    def test_streaming_no_per_sample_growth(self):
        h = Histogram("h")
        buckets = len(h.counts)
        for value in range(10_000):
            h.record(float(value))
        assert len(h.counts) == buckets  # fixed storage regardless of volume
        assert h.count == 10_000


class TestRegistryNoOp:
    def test_disabled_registry_returns_shared_null_instruments(self):
        # Zero allocations on the hot path: every name maps to the one
        # shared null instrument, nothing is created or stored.
        a = NULL_REGISTRY.counter("a")
        b = NULL_REGISTRY.counter("b")
        h = NULL_REGISTRY.histogram("h")
        g = NULL_REGISTRY.gauge("g")
        assert a is b
        assert a is h and a is g
        a.inc()
        h.record(123.0)
        g.set(5.0)
        snap = NULL_REGISTRY.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_enabled_registry_accumulates(self):
        registry = Registry()
        registry.counter("x").inc(3)
        registry.gauge("g").set(7.5)
        registry.histogram("h").record(100.0)
        snap = registry.snapshot()
        assert snap["counters"]["x"] == 3
        assert snap["gauges"]["g"]["value"] == 7.5
        assert snap["histograms"]["h"]["count"] == 1

    def test_get_or_create_is_stable(self):
        registry = Registry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("h") is registry.histogram("h")


def make_query(arrival=0, deadline=1_000_000, enqueue=None, issue=None, qid=7):
    q = Query(query_id=qid, tick_index=qid, arrival=arrival, deadline=deadline)
    q.enqueue_time = enqueue if enqueue is not None else arrival + DEFAULT_STAGES.pre_inference_ns
    q.issue_time = issue
    return q


class TestSpans:
    def test_in_time_query_spans_cover_every_stage_in_order(self):
        q = make_query(arrival=0, deadline=1_000_000, issue=10_000)
        trace = completed_query_trace(
            q, DEFAULT_STAGES, inference_done_ns=300_000, t_trans_ns=1_370,
            batch_size=2, accel_id=1,
        )
        assert trace.outcome == "in_time"
        assert [s.name for s in trace.spans] == list(ALL_STAGES)
        # Contiguous: each span starts where the previous ended.
        for prev, cur in zip(trace.spans, trace.spans[1:]):
            assert cur.start_ns == prev.end_ns
        assert trace.tick_to_trade_ns == 300_000 + DEFAULT_STAGES.post_inference_ns
        breakdown = trace.breakdown()
        assert breakdown["queue_wait"] == 10_000 - DEFAULT_STAGES.pre_inference_ns
        assert breakdown["c2c_transfer"] == 1_370
        assert breakdown["inference"] == 300_000 - 1_370 - 10_000
        assert attribute_miss(trace) is None

    def test_late_query_attributed_to_longest_variable_stage(self):
        q = make_query(arrival=0, deadline=100_000, issue=10_000)
        trace = completed_query_trace(
            q, DEFAULT_STAGES, inference_done_ns=300_000, t_trans_ns=1_370,
            batch_size=1,
        )
        assert trace.outcome == "late"
        assert attribute_miss(trace) == "inference"

    def test_late_query_lost_in_queue(self):
        # Issue so late that the queue wait dominates the miss.
        q = make_query(arrival=0, deadline=100_000, issue=400_000)
        trace = completed_query_trace(
            q, DEFAULT_STAGES, inference_done_ns=500_000, t_trans_ns=1_370,
            batch_size=1,
        )
        assert trace.outcome == "late"
        assert attribute_miss(trace) == "queue_wait"

    def test_dropped_query_trace_ends_in_queue_wait(self):
        q = make_query(arrival=0, deadline=40_000)
        q.drop_reason = "stale"
        trace = dropped_query_trace(q, DEFAULT_STAGES, drop_ns=50_000)
        assert trace.outcome == "dropped"
        assert [s.name for s in trace.spans] == list(FIXED_PRE_STAGES) + ["queue_wait"]
        assert trace.spans[-1].end_ns == 50_000
        assert attribute_miss(trace) == "dropped:stale"

    def test_unscored_queries_are_not_misses(self):
        q = make_query(deadline=-1, issue=10_000)
        trace = completed_query_trace(
            q, DEFAULT_STAGES, inference_done_ns=300_000, t_trans_ns=1_000,
            batch_size=1,
        )
        assert trace.outcome == "unscored"
        assert attribute_miss(trace) is None

    def test_non_contiguous_span_rejected(self):
        q = make_query(issue=10_000)
        trace = completed_query_trace(
            q, DEFAULT_STAGES, inference_done_ns=300_000, t_trans_ns=1_000,
            batch_size=1,
        )
        with pytest.raises(ValueError):
            trace.add("extra", trace.end_ns + 5, trace.end_ns + 10)
        with pytest.raises(ValueError):
            trace.add("backwards", trace.end_ns, trace.end_ns - 1)


class TestJsonlRoundTrip:
    def test_events_survive_write_and_read(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Telemetry(writer=TraceWriter(path)) as tel:
            tel.record_run("lighttrader", "deeplob", "ws+ds", n_accelerators=2)
            q = make_query(arrival=0, deadline=1_000_000, issue=10_000)
            tel.record_query(
                completed_query_trace(
                    q, DEFAULT_STAGES, inference_done_ns=300_000,
                    t_trans_ns=1_370, batch_size=2, accel_id=0,
                )
            )
            tel.sample_power(0, 1.5)
            tel.sample_power(100, 1.5)  # unchanged → deduplicated
            tel.sample_power(200, 9.0)
            tel.decisions.record_sweep(
                200, considered=40, feasible=0, rejected_deadline=39,
                rejected_power=1, chosen=None,
            )
        events = read_events(path)
        kinds = [e["type"] for e in events]
        assert kinds[0] == "run"
        assert kinds[-1] == "snapshot"
        assert kinds.count("power") == 2
        query = next(e for e in events if e["type"] == "query")
        assert query["outcome"] == "in_time"
        assert query["stages"]["c2c_transfer"] == 1_370
        assert query["t2t_ns"] == 300_000 + DEFAULT_STAGES.post_inference_ns
        sweep = next(e for e in events if e["type"] == "sweep")
        assert sweep["considered"] == 40
        assert sweep["chosen"] is None
        snapshot = events[-1]
        assert snapshot["counters"]["queries.in_time"] == 1
        assert snapshot["counters"]["scheduler.sweeps"] == 1

    def test_keep_traces_retains_objects(self):
        tel = Telemetry(keep_traces=True)
        q = make_query(issue=10_000)
        tel.record_query(
            completed_query_trace(
                q, DEFAULT_STAGES, inference_done_ns=300_000,
                t_trans_ns=1_000, batch_size=1,
            )
        )
        assert len(tel.traces) == 1
        assert tel.registry.histogram("tick_to_trade").count == 1


@pytest.fixture(scope="module")
def small_workload():
    return synthetic_workload(duration_s=5.0, seed=11)


class TestBacktestIntegration:
    @pytest.mark.parametrize("scheme_flags", [(False, False), (True, True)])
    def test_trace_report_for_baseline_and_ws_ds(
        self, tmp_path, small_workload, scheme_flags
    ):
        ws, ds = scheme_flags
        scheme = "ws+ds" if ws else "baseline"
        path = tmp_path / f"{scheme}.jsonl"
        config = SimConfig(
            model="deeplob",
            n_accelerators=2,
            power_condition="limited",
            workload_scheduling=ws,
            dvfs_scheduling=ds,
        )
        with Telemetry(writer=TraceWriter(path)) as tel:
            result = Backtester(
                small_workload, lighttrader_profile(), config, telemetry=tel
            ).run()
        events = read_events(path)
        queries = [e for e in events if e["type"] == "query"]
        # Every scored outcome in the metrics digest appears in the trace.
        outcomes = {o: sum(1 for q in queries if q["outcome"] == o)
                    for o in ("in_time", "late", "dropped")}
        assert outcomes["in_time"] == result.responded
        assert outcomes["late"] == result.completed_late
        assert outcomes["dropped"] == result.dropped
        report = render_report(path)
        assert "Tick-to-trade breakdown" in report
        assert "Miss attribution" in report
        assert "power timeline" in report
        if ws:
            assert "algorithm 1" in report

    def test_ws_ds_trace_logs_scheduler_decisions(self, tmp_path, small_workload):
        path = tmp_path / "wsds.jsonl"
        config = SimConfig(
            model="deeplob",
            n_accelerators=2,
            power_condition="limited",
            workload_scheduling=True,
            dvfs_scheduling=True,
        )
        with Telemetry(writer=TraceWriter(path)) as tel:
            Backtester(
                small_workload, lighttrader_profile(), config, telemetry=tel
            ).run()
        events = read_events(path)
        assert any(e["type"] == "sweep" for e in events)
        sweeps = [e for e in events if e["type"] == "sweep"]
        assert all(
            e["considered"] >= e["feasible"] + e["rejected_deadline"] + e["rejected_power"]
            for e in sweeps
        )
        assert any(e["type"] == "dvfs_transition" for e in events)

    def test_env_var_enables_tracing(self, tmp_path, small_workload, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        Backtester(
            small_workload, lighttrader_profile(), SimConfig(model="vanilla_cnn")
        ).run()
        files = list(tmp_path.glob("*.jsonl"))
        assert len(files) == 1
        assert report_main([str(tmp_path)]) == 0

    def test_report_missing_path_exits_nonzero(self, tmp_path, capsys):
        assert report_main([str(tmp_path / "absent.jsonl")]) == 1
        err = capsys.readouterr().err
        assert "no such trace" in err

    def test_report_corrupt_jsonl_exits_nonzero(self, tmp_path, capsys):
        trace = tmp_path / "corrupt.jsonl"
        trace.write_text('{"type": "run"}\n{broken json\n')
        assert report_main([str(trace)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: corrupt trace")
        assert err.count("\n") == 1  # one clear line, not a traceback

    def test_report_truncated_event_exits_nonzero(self, tmp_path, capsys):
        # Structurally valid JSON missing required keys (a write cut
        # short mid-run): one-line error, nonzero exit, no traceback.
        trace = tmp_path / "truncated.jsonl"
        trace.write_text('{"type": "query", "outcome": "in_time"}\n')
        assert report_main([str(trace)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error: malformed trace")

    def test_report_quiet_mode_emits_json_error_lines(self, tmp_path, capsys):
        import json as _json

        (tmp_path / "corrupt.jsonl").write_text('{"type": "run"}\n{broken\n')
        (tmp_path / "truncated.jsonl").write_text(
            '{"type": "query", "outcome": "in_time"}\n'
        )
        assert report_main(["--quiet", str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert captured.err == ""  # machine mode: nothing on stderr
        lines = [
            _json.loads(line) for line in captured.out.splitlines() if line
        ]
        assert [entry["error"] for entry in lines] == [
            "corrupt_trace",
            "malformed_trace",
        ]
        assert lines[0]["line"] == 2

    def test_report_quiet_mode_missing_path(self, tmp_path, capsys):
        import json as _json

        assert report_main(["--quiet", str(tmp_path / "absent.jsonl")]) == 1
        captured = capsys.readouterr()
        assert captured.err == ""
        (entry,) = [
            _json.loads(line) for line in captured.out.splitlines() if line
        ]
        assert entry["error"] == "no_such_path"

    def test_trace_error_classifier(self, tmp_path):
        from repro.telemetry.report import trace_error

        good = tmp_path / "good.jsonl"
        good.write_text('{"type": "run", "system": "x"}\n')
        assert trace_error(good) is None
        bad = tmp_path / "bad.jsonl"
        bad.write_text("{nope\n")
        descriptor = trace_error(bad)
        assert descriptor["error"] == "corrupt_trace"
        assert descriptor["line"] == 1

    def test_report_keeps_rendering_after_a_bad_trace(
        self, tmp_path, small_workload, monkeypatch, capsys
    ):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        Backtester(
            small_workload, lighttrader_profile(), SimConfig(model="vanilla_cnn")
        ).run()
        (tmp_path / "aaa_corrupt.jsonl").write_text("{nope\n")
        assert report_main([str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "error: corrupt trace" in captured.err
        assert "Tick-to-trade breakdown" in captured.out  # good trace rendered

    def test_disabled_telemetry_writes_nothing(
        self, tmp_path, small_workload, monkeypatch
    ):
        monkeypatch.delenv("REPRO_TRACE_DIR", raising=False)
        result = Backtester(
            small_workload, lighttrader_profile(), SimConfig(model="vanilla_cnn")
        ).run()
        assert result.n_queries > 0
        assert list(tmp_path.glob("*.jsonl")) == []

    def test_identical_results_with_and_without_telemetry(self, small_workload):
        config = SimConfig(
            model="deeplob", n_accelerators=2,
            workload_scheduling=True, dvfs_scheduling=True,
        )
        plain = Backtester(small_workload, lighttrader_profile(), config).run()
        traced = Backtester(
            small_workload, lighttrader_profile(), config, telemetry=Telemetry()
        ).run()
        assert plain.responded == traced.responded
        assert plain.dropped == traced.dropped
        assert plain.energy_j == traced.energy_j
