"""Tests for system profiles and model cost calibration."""

import statistics

import pytest

from repro import paperdata
from repro.accelerator import DVFSTable
from repro.baselines import (
    ModelCost,
    benchmark_costs,
    cost_from_model,
    cycle_scale_kappa,
    fpga_profile,
    gpu_profile,
    lighttrader_profile,
)
from repro.errors import CalibrationError, SchedulingError

MODELS = ("vanilla_cnn", "translob", "deeplob")


@pytest.fixture(scope="module")
def nominal():
    return DVFSTable(cap_hz=2.0e9).max_point


@pytest.fixture(scope="module")
def lt():
    return lighttrader_profile()


class TestModelCosts:
    def test_anchored_latencies_match_paper(self, nominal):
        costs = benchmark_costs()
        for model in MODELS:
            assert costs[model].infer_ns(nominal, 1) == pytest.approx(
                paperdata.FIG11_LATENCY_NS[model], rel=0.001
            )

    def test_batch_cycles_affine_and_sublinear(self, nominal):
        cost = benchmark_costs()["vanilla_cnn"]
        t1 = cost.infer_ns(nominal, 1)
        t8 = cost.infer_ns(nominal, 8)
        assert t8 < 8 * t1  # batching amortises
        assert t8 > t1  # but costs more than one sample

    def test_marginal_batch_cost_is_utilisation_fraction(self, nominal):
        cost = benchmark_costs()["deeplob"]
        marginal = cost.cycles(2) - cost.cycles(1)
        assert marginal == pytest.approx(
            cost.cycles_batch1 * cost.batch_utilisation, rel=1e-6
        )

    def test_invalid_batch_rejected(self, nominal):
        with pytest.raises(CalibrationError):
            benchmark_costs()["deeplob"].cycles(0)

    def test_kappa_stable_and_positive(self):
        assert cycle_scale_kappa() > 1.0

    def test_cost_from_model_extrapolates(self, nominal):
        from repro.nn import build_vanilla_cnn

        cost = cost_from_model(build_vanilla_cnn(width=32))
        assert cost.cycles_batch1 > 0
        assert 0 < cost.batch_utilisation <= 1
        assert cost.activity > 0

    def test_zoo_latencies_monotone(self, nominal):
        from repro.nn import complexity_sweep

        latencies = [
            cost_from_model(m).infer_ns(nominal) for m in complexity_sweep().values()
        ]
        assert latencies == sorted(latencies)


class TestLightTraderProfile:
    def test_latency_scales_with_frequency(self, lt):
        table = DVFSTable()
        slow = lt.t_infer_ns("deeplob", table.at_ghz(1.0), 1)
        fast = lt.t_infer_ns("deeplob", table.at_ghz(2.0), 1)
        assert slow == pytest.approx(2 * fast, rel=0.01)

    def test_requires_operating_point(self, lt):
        with pytest.raises(SchedulingError):
            lt.t_infer_ns("deeplob", None, 1)

    def test_unknown_model_rejected(self, lt):
        with pytest.raises(SchedulingError):
            lt.t_infer_ns("resnet", DVFSTable().at_ghz(2.0), 1)

    def test_register_new_model(self, nominal):
        profile = lighttrader_profile()
        profile.register(
            ModelCost(
                name="custom",
                cycles_batch1=1e5,
                batch_utilisation=0.3,
                activity=1.0,
                total_ops=1e9,
                weight_bytes=1000,
            )
        )
        assert profile.t_infer_ns("custom", nominal, 1) > 0

    def test_power_scales_with_model_weight(self, lt, nominal):
        assert lt.power_w("deeplob", nominal, 1) > lt.power_w("vanilla_cnn", nominal, 1)

    def test_tick_to_trade_includes_stages(self, lt, nominal):
        t2t = lt.tick_to_trade_ns("vanilla_cnn", nominal, 1)
        assert t2t == lt.t_total_ns("vanilla_cnn", nominal, 1) + lt.stages.total_ns


class TestBaselineProfiles:
    def test_mean_speedups_match_paper(self, lt, nominal):
        gpu, fpga = gpu_profile(), fpga_profile()
        gpu_ratio = statistics.mean(
            gpu.t_total_ns(m, None, 1) / lt.t_total_ns(m, nominal, 1) for m in MODELS
        )
        fpga_ratio = statistics.mean(
            fpga.t_total_ns(m, None, 1) / lt.t_total_ns(m, nominal, 1) for m in MODELS
        )
        assert gpu_ratio == pytest.approx(paperdata.FIG11_GPU_SPEEDUP, rel=0.02)
        assert fpga_ratio == pytest.approx(paperdata.FIG11_FPGA_SPEEDUP, rel=0.02)

    def test_mean_efficiency_gains_match_paper(self, lt):
        gpu, fpga = gpu_profile(), fpga_profile()
        gains_gpu = statistics.mean(
            lt.effective_tflops_per_watt(m, paperdata.TABLE2_TOTAL_OPS[m])
            / gpu.effective_tflops_per_watt(m, paperdata.TABLE2_TOTAL_OPS[m])
            for m in MODELS
        )
        gains_fpga = statistics.mean(
            lt.effective_tflops_per_watt(m, paperdata.TABLE2_TOTAL_OPS[m])
            / fpga.effective_tflops_per_watt(m, paperdata.TABLE2_TOTAL_OPS[m])
            for m in MODELS
        )
        assert gains_gpu == pytest.approx(paperdata.FIG11_GPU_EFFICIENCY_GAIN, rel=0.05)
        assert gains_fpga == pytest.approx(paperdata.FIG11_FPGA_EFFICIENCY_GAIN, rel=0.05)

    def test_gpu_batches_better_than_fpga(self):
        gpu, fpga = gpu_profile(), fpga_profile()
        gpu_gain = gpu.t_infer_ns("deeplob", None, 8) / gpu.t_infer_ns("deeplob", None, 1)
        fpga_gain = fpga.t_infer_ns("deeplob", None, 8) / fpga.t_infer_ns("deeplob", None, 1)
        assert gpu_gain < fpga_gain  # GPU's batch latency grows more slowly

    def test_no_dvfs_on_baselines(self):
        assert not gpu_profile().supports_dvfs
        assert not fpga_profile().supports_dvfs
        assert lighttrader_profile().supports_dvfs

    def test_baseline_unknown_model_rejected(self):
        with pytest.raises(SchedulingError):
            gpu_profile().t_infer_ns("nope", None, 1)
        with pytest.raises(SchedulingError):
            gpu_profile().t_infer_ns("deeplob", None, 0)
