"""Incremental engine: cache correctness, invalidation, speedup, CLI.

The cache must be *transparent* — byte-for-byte identical findings and
facts with or without it — and *safe* — any change to file content,
path, or the lint engine itself misses.  The speedup assertion here is
deliberately lenient (the CI timing step records the real ≥3x number);
it guards the mechanism, not the magnitude.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
import time
from pathlib import Path

from repro.lint.cache import (
    LintCache,
    analyze_paths,
    engine_version,
    project_findings_for,
)
from repro.lint.__main__ import main as lint_main

REPO_ROOT = Path(__file__).resolve().parent.parent
LINT_DIR = REPO_ROOT / "src" / "repro" / "lint"


def write_tree(root: Path, files: dict[str, str]) -> list[Path]:
    paths = []
    for rel, source in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
        paths.append(target)
    return paths


def test_cache_is_transparent(tmp_path: Path):
    files = write_tree(
        tmp_path / "tree",
        {
            "a.py": "total = deadline_ns + horizon_s\n",
            "b.py": "x_ns = 1\n",
        },
    )
    cold = analyze_paths(files, root=tmp_path)
    cache = LintCache(tmp_path / "cache")
    primed = analyze_paths(files, root=tmp_path, cache=cache)
    warm = analyze_paths(files, root=tmp_path, cache=cache)

    for result in (primed, warm):
        assert [f.to_dict() for f in result.findings] == [
            f.to_dict() for f in cold.findings
        ]
        assert [m.to_dict() for m in result.facts] == [
            m.to_dict() for m in cold.facts
        ]
    assert primed.cache_hits == 0
    assert warm.cache_hits == 2


def test_cache_invalidates_on_content_change(tmp_path: Path):
    [target] = write_tree(tmp_path / "tree", {"a.py": "x_ns = 1\n"})
    cache = LintCache(tmp_path / "cache")
    analyze_paths([target], root=tmp_path, cache=cache)

    target.write_text("total = deadline_ns + horizon_s\n")
    result = analyze_paths([target], root=tmp_path, cache=cache)
    assert result.cache_hits == 0
    assert [f.rule for f in result.findings] == ["RL002"]


def test_cache_key_depends_on_path_and_engine(tmp_path: Path):
    key_a = LintCache.key_for("src/a.py", "x = 1\n")
    key_b = LintCache.key_for("src/b.py", "x = 1\n")
    assert key_a != key_b
    assert LintCache.key_for("src/a.py", "x = 1\n") == key_a


def test_engine_version_pins_lint_sources():
    # The version digests the lint package itself: editing any rule
    # must invalidate every cached entry.
    version = engine_version()
    assert len(version) == 24
    assert version == engine_version()  # memoized, stable in-process


def test_corrupt_cache_entry_is_a_miss(tmp_path: Path):
    [target] = write_tree(tmp_path / "tree", {"a.py": "x_ns = 1\n"})
    cache = LintCache(tmp_path / "cache")
    analyze_paths([target], root=tmp_path, cache=cache)
    for entry in (tmp_path / "cache").glob("*.json"):
        entry.write_text("{ not json")
    result = analyze_paths([target], root=tmp_path, cache=cache)
    assert result.cache_hits == 0
    assert [f.rule for f in result.findings] == []


def test_warm_run_is_faster_over_lint_package(tmp_path: Path):
    """Mechanism guard: warm hits skip parsing; CI records the real ≥3x."""
    paths = sorted(LINT_DIR.glob("*.py"))
    cache = LintCache(tmp_path / "cache")

    t0 = time.perf_counter()
    analyze_paths(paths, root=REPO_ROOT, cache=cache)
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = analyze_paths(paths, root=REPO_ROOT, cache=cache)
    warm_s = time.perf_counter() - t0

    assert warm.cache_hits == len(paths)
    assert warm_s < cold_s, (cold_s, warm_s)


def test_project_findings_identical_from_cached_facts(tmp_path: Path):
    source = """
from repro.sim.events import EventKind

class Backtester:
    def _run_lighttrader(self, queue):
        if queue is EventKind.ARRIVAL:
            pass

    def _run_lighttrader_fast(self, queue):
        if queue is EventKind.ARRIVAL:
            pass
        elif queue is EventKind.RETRY:
            pass

    def _run_fixed_system(self, q, s): ...
    def _run_fixed_system_fast(self, s): ...
"""
    files = write_tree(tmp_path / "tree", {"src/repro/sim/backtest.py": source})
    cache = LintCache(tmp_path / "cache")
    cold = analyze_paths(files, root=tmp_path, cache=cache)
    warm = analyze_paths(files, root=tmp_path, cache=cache)
    assert warm.cache_hits == 1
    cold_project = [f.to_dict() for f in project_findings_for(cold.facts)]
    warm_project = [f.to_dict() for f in project_findings_for(warm.facts)]
    assert cold_project == warm_project
    assert any(
        f["rule"] == "RL006" and "backtest-lighttrader-loop" in str(f["message"])
        for f in warm_project
    )


def test_cli_cache_flag_and_jobs(tmp_path: Path, capsys):
    tree = write_tree(
        tmp_path / "tree", {"a.py": "x_ns = 1\n", "b.py": "y_ns = 2\n"}
    )
    cache_dir = tmp_path / "cache"
    assert (
        lint_main([str(p) for p in tree] + ["--cache", str(cache_dir), "--jobs", "2"])
        == 0
    )
    capsys.readouterr()
    assert list(cache_dir.glob("*.json"))
    assert (
        lint_main([str(p) for p in tree] + ["--cache", str(cache_dir)]) == 0
    )
    capsys.readouterr()


def test_cli_changed_mode(tmp_path: Path):
    if shutil.which("git") is None:
        return
    tree = tmp_path / "repo"
    write_tree(
        tree,
        {
            "clean.py": "x_ns = 1\n",
            "untouched.py": "total = deadline_ns + horizon_s\n",
        },
    )
    env = {"PATH": "/usr/bin:/bin:/usr/local/bin", "HOME": str(tmp_path)}
    run = lambda *cmd: subprocess.run(
        list(cmd), cwd=tree, env=env, capture_output=True, text=True, check=True
    )
    run("git", "init", "-q")
    run("git", "config", "user.email", "t@example.com")
    run("git", "config", "user.name", "t")
    run("git", "add", ".")
    run("git", "commit", "-qm", "seed")

    # Only the newly added dirty file is linted; the committed dirty
    # file is invisible to --changed.
    (tree / "new.py").write_text("bad = a_ns + b_s\n")
    result = subprocess.run(
        [sys.executable, "-m", "repro.lint", "--changed", "--format", "json"],
        cwd=tree,
        env={**env, "PYTHONPATH": str(REPO_ROOT / "src")},
        capture_output=True,
        text=True,
    )
    assert result.returncode == 1, result.stdout + result.stderr
    payload = json.loads(result.stdout)
    assert {f["path"] for f in payload} == {"new.py"}


def test_cli_changed_outside_git_is_usage_error(tmp_path: Path):
    result = subprocess.run(
        [sys.executable, "-m", "repro.lint", "--changed"],
        cwd=tmp_path,
        env={
            "PYTHONPATH": str(REPO_ROOT / "src"),
            "PATH": "/usr/bin:/bin:/usr/local/bin",
        },
        capture_output=True,
        text=True,
    )
    assert result.returncode == 2
    assert "git checkout" in result.stderr
