"""Integration tests for the back-testing simulator."""

import pytest

from repro import paperdata
from repro.baselines import fpga_profile, gpu_profile, lighttrader_profile
from repro.errors import SimulationError
from repro.market import generate_session
from repro.sim import (
    Backtester,
    FixedDeadline,
    QueryWorkload,
    SimConfig,
    synthetic_workload,
)


@pytest.fixture(scope="module")
def workload():
    return synthetic_workload(duration_s=20.0, seed=7)


@pytest.fixture(scope="module")
def lt():
    return lighttrader_profile()


class TestSimConfig:
    def test_scheme_names(self):
        assert SimConfig().scheme == "baseline"
        assert SimConfig(workload_scheduling=True).scheme == "ws"
        assert SimConfig(dvfs_scheduling=True).scheme == "ds"
        assert SimConfig(workload_scheduling=True, dvfs_scheduling=True).scheme == "ws+ds"

    def test_budgets(self):
        assert SimConfig(power_condition="sufficient").budget_w == 55.0
        assert SimConfig(power_condition="limited").budget_w == 20.0

    def test_invalid_config_rejected(self):
        with pytest.raises(SimulationError):
            SimConfig(power_condition="unlimited")
        with pytest.raises(SimulationError):
            SimConfig(n_accelerators=0)


class TestConservation:
    @pytest.mark.parametrize("scheme", ["baseline", "ws", "ds", "ws+ds"])
    def test_every_query_accounted(self, workload, lt, scheme):
        config = SimConfig(
            model="vanilla_cnn",
            n_accelerators=2,
            workload_scheduling="w" in scheme and scheme != "ds",
            dvfs_scheduling="ds" in scheme,
        )
        bt = Backtester(workload, lt, config)
        result = bt.run()
        accounted = result.responded + result.completed_late + result.dropped
        accounted += bt.last_metrics.unscored
        assert accounted == len(workload)

    def test_deterministic_runs(self, workload, lt):
        config = SimConfig(model="deeplob", n_accelerators=4, workload_scheduling=True)
        a = Backtester(workload, lt, config).run()
        b = Backtester(workload, lt, config).run()
        assert a.responded == b.responded
        assert a.mean_latency_us == b.mean_latency_us


class TestPowerInvariant:
    @pytest.mark.parametrize("scheme_flags", [(False, True), (True, True)])
    def test_peak_power_within_budget(self, workload, lt, scheme_flags):
        ws, ds = scheme_flags
        config = SimConfig(
            model="deeplob",
            n_accelerators=8,
            power_condition="limited",
            workload_scheduling=ws,
            dvfs_scheduling=ds,
        )
        result = Backtester(workload, lt, config).run()
        # Small tolerance: the DS fallback may transiently issue one batch
        # at the worst-case-safe static point while boosts drain.
        assert result.peak_power_w <= config.budget_w * 1.10

    def test_baseline_power_within_static_envelope(self, workload, lt):
        config = SimConfig(model="deeplob", n_accelerators=8, power_condition="limited")
        result = Backtester(workload, lt, config).run()
        assert result.peak_power_w <= config.budget_w + 1e-6


class TestLatency:
    def test_lighttrader_latency_near_profile(self, workload, lt):
        result = Backtester(workload, lt, SimConfig(model="vanilla_cnn")).run()
        # Fastest responses: pipeline + inference with no queueing (~122 µs).
        assert 100 <= result.p50_latency_us <= 400

    def test_gpu_latency_an_order_slower(self, workload):
        result = Backtester(workload, gpu_profile(), SimConfig(model="vanilla_cnn")).run()
        assert result.p50_latency_us > 1_500

    def test_response_ordering_across_systems(self, workload, lt):
        rates = {}
        for name, profile in (
            ("lt", lt),
            ("gpu", gpu_profile()),
            ("fpga", fpga_profile()),
        ):
            # vanilla_cnn separates the baselines cleanly (on DeepLOB the
            # GPU and FPGA latencies nearly coincide, as in the paper).
            rates[name] = (
                Backtester(workload, profile, SimConfig(model="vanilla_cnn"))
                .run()
                .response_rate
            )
        assert rates["lt"] > rates["fpga"] > rates["gpu"]


class TestScaling:
    def test_more_accelerators_more_responses(self, workload, lt):
        r1 = Backtester(workload, lt, SimConfig(model="deeplob", n_accelerators=1)).run()
        r8 = Backtester(workload, lt, SimConfig(model="deeplob", n_accelerators=8)).run()
        assert r8.response_rate >= r1.response_rate

    def test_workload_scheduling_batches_under_load(self, workload, lt):
        config = SimConfig(model="deeplob", n_accelerators=1, workload_scheduling=True)
        result = Backtester(workload, lt, config).run()
        assert result.mean_batch_size > 1.0

    def test_baseline_never_batches(self, workload, lt):
        result = Backtester(workload, lt, SimConfig(model="deeplob")).run()
        assert result.mean_batch_size == pytest.approx(1.0)


class TestTapeWorkload:
    def test_backtest_from_recorded_tape(self, lt):
        tape = generate_session(duration_s=2.0, seed=5)
        workload = QueryWorkload.from_tape(tape, FixedDeadline(budget_ns=5_000_000))
        result = Backtester(workload, lt, SimConfig(model="vanilla_cnn")).run()
        assert result.n_queries == len(tape)
        assert result.response_rate > 0.5
