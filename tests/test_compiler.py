"""Tests for the CGRA compiler pipeline."""

import pytest

from repro.accelerator import DEFAULT_CONFIG, AcceleratorConfig
from repro.compiler import (
    CompiledProgram,
    OpKind,
    Opcode,
    build_dfg,
    compile_model,
    partition,
)
from repro.errors import CompileError
from repro.nn import benchmark_models, build_model, build_deeplob


@pytest.fixture(scope="module")
def programs():
    return {name: compile_model(m) for name, m in benchmark_models().items()}


class TestDFG:
    def test_dfg_preserves_total_macs(self):
        model = build_model("vanilla_cnn")
        dfg = build_dfg(model)
        assert dfg.total_macs() == model.macs()

    def test_dfg_preserves_weight_bytes(self):
        model = build_model("deeplob")
        dfg = build_dfg(model)
        assert dfg.total_weight_bytes() == model.weight_bytes()

    def test_topological_order_starts_at_input(self):
        dfg = build_dfg(build_model("vanilla_cnn"))
        nodes = dfg.topological_nodes()
        assert nodes[0].name == "input"

    def test_inception_creates_parallel_branches(self):
        dfg = build_dfg(build_deeplob())
        graph = dfg.graph
        # Some node should have out-degree 3 (the three inception branches).
        assert max(dict(graph.out_degree()).values()) >= 3

    def test_lstm_is_recurrent_node(self):
        dfg = build_dfg(build_deeplob())
        recurrent = [n for n in dfg.topological_nodes() if n.kind is OpKind.RECURRENT_STEP]
        assert len(recurrent) == 1
        assert recurrent[0].sequential_steps == 100

    def test_critical_path_positive(self):
        dfg = build_dfg(build_model("translob"))
        assert dfg.critical_path_length() > 5


class TestPartition:
    def test_every_node_in_exactly_one_block(self):
        model = build_model("deeplob")
        dfg = build_dfg(model)
        blocks = partition(dfg, DEFAULT_CONFIG)
        names = [n.name for b in blocks for n in b.nodes]
        assert sorted(names) == sorted(n.name for n in dfg.topological_nodes())

    def test_recurrent_block_isolated(self):
        dfg = build_dfg(build_deeplob())
        blocks = partition(dfg, DEFAULT_CONFIG)
        recurrent_blocks = [b for b in blocks if b.is_recurrent]
        assert len(recurrent_blocks) == 1
        assert len(recurrent_blocks[0].nodes) == 1

    def test_weight_budget_respected(self):
        config = DEFAULT_CONFIG
        dfg = build_dfg(build_model("deeplob"))
        budget = int(config.dmem_bytes * 0.40)
        for block in partition(dfg, config):
            assert block.weight_bytes <= budget

    def test_oversized_node_rejected(self):
        tiny = AcceleratorConfig(dmem_bytes=1024)
        dfg = build_dfg(build_model("deeplob"))
        with pytest.raises(CompileError):
            partition(dfg, tiny)


class TestCompiledProgram:
    def test_all_benchmarks_compile(self, programs):
        for name, program in programs.items():
            assert isinstance(program, CompiledProgram)
            assert program.per_sample_cycles > 0
            assert program.setup_cycles > 0

    def test_latency_ordering_matches_complexity(self, programs):
        lat = {n: p.latency_ns(2.0e9) for n, p in programs.items()}
        assert lat["vanilla_cnn"] < lat["translob"] < lat["deeplob"]

    def test_cycles_affine_in_batch(self, programs):
        program = programs["vanilla_cnn"]
        c1, c2, c4 = program.cycles(1), program.cycles(2), program.cycles(4)
        assert c2 - c1 == program.per_sample_cycles
        assert c4 - c2 == 2 * program.per_sample_cycles

    def test_batching_improves_throughput(self, programs):
        """Per-sample time falls with batch because setup amortises."""
        program = programs["deeplob"]
        per_sample_1 = program.cycles(1)
        per_sample_8 = program.cycles(8) / 8
        assert per_sample_8 < per_sample_1

    def test_latency_scales_inverse_frequency(self, programs):
        program = programs["translob"]
        assert program.latency_ns(1.0e9) == pytest.approx(
            2 * program.latency_ns(2.0e9), rel=1e-6
        )

    def test_invalid_batch_rejected(self, programs):
        with pytest.raises(CompileError):
            programs["vanilla_cnn"].cycles(0)

    def test_utilization_in_unit_range(self, programs):
        for program in programs.values():
            assert 0.0 < program.mean_pe_utilization <= 1.0

    def test_summary_lists_blocks(self, programs):
        summary = programs["deeplob"].summary()
        assert "HB0" in summary
        assert "hyperblocks" in summary


class TestCodegen:
    def test_streams_cover_whole_grid(self, programs):
        program = programs["vanilla_cnn"]
        config = program.config
        for block_program in program.programs:
            n_streams = len(block_program.pe_streams) + len(block_program.epe_streams)
            assert n_streams == config.n_pes
            assert len(block_program.epe_streams) == config.n_epes

    def test_special_ops_only_on_epes(self, programs):
        for program in programs.values():
            for block_program in program.programs:
                for stream in block_program.pe_streams:
                    for run in stream.runs:
                        assert not run.opcode.is_special

    def test_mac_work_present_for_matmul_blocks(self, programs):
        program = programs["deeplob"]
        any_mac = any(
            run.opcode is Opcode.MAC
            for bp in program.programs
            for stream in bp.pe_streams
            for run in stream.runs
        )
        assert any_mac

    def test_lsu_loads_match_weights(self, programs):
        """Every block's LSU programs must load at least its weight elems."""
        program = programs["translob"]
        for block, bp in zip(program.blocks, program.programs):
            loaded = sum(
                run.repeat
                for stream in bp.lsu_streams
                for run in stream.runs
                if run.opcode is Opcode.LOAD
            )
            assert loaded >= block.weight_bytes // 2

    def test_streams_end_with_sync(self, programs):
        program = programs["vanilla_cnn"]
        for bp in program.programs:
            for stream in bp.pe_streams + bp.epe_streams:
                assert stream.runs[-1].opcode is Opcode.SYNC


class TestZooCompilation:
    def test_complexity_sweep_compiles_monotone(self):
        from repro.nn import complexity_sweep

        cycles = [
            compile_model(m).per_sample_cycles for m in complexity_sweep().values()
        ]
        assert cycles == sorted(cycles)
