"""Unit tests for the order-flow agents."""

import numpy as np
import pytest

from repro.lob import Order, Side
from repro.market.agents import (
    AgentMix,
    LiquidityTaker,
    MarketContext,
    MarketMaker,
    MomentumTrader,
    default_mix,
)


@pytest.fixture
def ctx():
    context = MarketContext(symbol="ES", reference_price=18_000.0)
    # Two-sided seed.
    context.engine.submit("ES", Order(side=Side.BID, price=17_998, quantity=10), 0)
    context.engine.submit("ES", Order(side=Side.ASK, price=18_002, quantity=10), 0)
    return context


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestMarketMaker:
    def test_places_quotes(self, ctx, rng):
        maker = MarketMaker("mm")
        for t in range(20):
            maker.act(ctx, t, rng)
        book = ctx.book
        assert len(book) > 2  # seeded 2 plus maker quotes

    def test_recycles_stale_quotes(self, ctx, rng):
        maker = MarketMaker("mm", max_live_quotes=5)
        for t in range(50):
            maker.act(ctx, t, rng)
        assert len(maker._live) <= 5

    def test_quotes_around_anchor(self, ctx, rng):
        maker = MarketMaker("mm", max_depth=3)
        for t in range(30):
            maker.act(ctx, t, rng)
        for side in (ctx.book.bids, ctx.book.asks):
            for level in side.iter_best_first():
                assert abs(level.price - 18_000) <= 12


class TestLiquidityTaker:
    def test_crosses_the_spread(self, ctx, rng):
        taker = LiquidityTaker("taker")
        fills = []
        for t in range(30):
            for result in taker.act(ctx, t, rng):
                fills.extend(result.fills)
        assert fills  # some IOC orders executed

    def test_noop_on_empty_book(self, rng):
        context = MarketContext(symbol="ES", reference_price=100.0)
        assert LiquidityTaker("t").act(context, 0, rng) == []

    def test_sets_direction(self, ctx, rng):
        taker = LiquidityTaker("taker")
        for t in range(30):
            taker.act(ctx, t, rng)
        assert ctx.last_direction in (-1, 0, 1)


class TestMomentumTrader:
    def test_idle_without_direction(self, ctx, rng):
        assert MomentumTrader("momo").act(ctx, 0, rng) == []

    def test_chases_direction(self, ctx, rng):
        ctx.last_direction = 1
        results = MomentumTrader("momo").act(ctx, 0, rng)
        assert results
        assert results[0].order.side is Side.BID


class TestAgentMix:
    def test_default_mix_samples_all_archetypes(self, rng):
        mix = default_mix()
        names = {type(mix.sample(rng)).__name__ for __ in range(200)}
        assert names == {"MarketMaker", "LiquidityTaker", "MomentumTrader"}

    def test_invalid_mix_rejected(self):
        with pytest.raises(ValueError):
            AgentMix(agents=(), weights=())
        with pytest.raises(ValueError):
            AgentMix(agents=(MarketMaker("m"),), weights=(1.0, 2.0))
        with pytest.raises(ValueError):
            AgentMix(agents=(MarketMaker("m"),), weights=(-1.0,))
