"""Tests for offload engine, trading engine, DMA, stages and feed handler."""

import numpy as np
import pytest

from repro.errors import SchedulingError
from repro.lob import DepthSnapshot, Side
from repro.market import generate_session
from repro.pipeline import (
    DEFAULT_STAGES,
    DMAModel,
    FeedHandler,
    LocalBookMirror,
    NormalizationStats,
    OffloadEngine,
    Prediction,
    RiskLimits,
    TradingEngine,
)
from repro.protocol import (
    ILink3Order,
    PacketParser,
    SecurityDirectory,
    encode_market_events,
    encode_udp_frame,
)
from repro.lob.events import BookUpdate, TradeTick, UpdateAction


def snapshot(ts=0, bid=17_999, ask=18_001):
    return DepthSnapshot(
        symbol="ESU6",
        timestamp=ts,
        depth=10,
        bids=((bid, 5), (bid - 1, 3)),
        asks=((ask, 4), (ask + 1, 6)),
    )


class TestNormalizationStats:
    def test_fit_and_apply(self):
        tape = generate_session(duration_s=1.0, seed=3)
        stats = NormalizationStats.fit(tape)
        vec = stats.apply(tape[0].snapshot.feature_vector())
        assert vec.shape == (40,)
        assert np.abs(vec).max() < 50  # roughly standardised

    def test_constant_feature_no_nan(self):
        tape = generate_session(duration_s=1.0, seed=3)
        stats = NormalizationStats.fit(tape)
        assert np.isfinite(stats.apply(tape[5].snapshot.feature_vector())).all()

    def test_too_short_rejected(self):
        from repro.market import TickTape

        with pytest.raises(SchedulingError):
            NormalizationStats.fit(TickTape([]))


class TestOffloadEngine:
    def test_warmup_produces_no_queries(self):
        engine = OffloadEngine(window=5, store_tensors=True)
        for i in range(4):
            assert engine.on_tick(snapshot(i), i, i + 100) is None
        query = engine.on_tick(snapshot(4), 4, 104)
        assert query is not None
        assert query.tensor.shape == (5, 40)

    def test_fifo_slides(self):
        engine = OffloadEngine(window=3, store_tensors=True)
        for i in range(5):
            query = engine.on_tick(snapshot(i, bid=17_990 + i), i, i + 100)
        # Last tensor holds the 3 most recent ticks.
        assert query.tensor[-1][2] == 17_994  # bid price of latest tick

    def test_overflow_drops_oldest(self):
        engine = OffloadEngine(window=1, max_pending=3)
        queries = [engine.on_tick(snapshot(i), i, i + 100) for i in range(5)]
        assert engine.pending_count() == 3
        assert engine.dropped_overflow == 2
        assert queries[0].dropped and queries[1].dropped
        assert engine.peek_pending() is queries[2]

    def test_pop_batch_fifo_order(self):
        engine = OffloadEngine(window=1)
        queries = [engine.on_tick(snapshot(i), i, i + 100) for i in range(4)]
        batch = engine.pop_batch(3)
        assert batch == queries[:3]
        assert engine.pending_count() == 1

    def test_drop_stale(self):
        engine = OffloadEngine(window=1)
        engine.on_tick(snapshot(0), 0, deadline=10)
        engine.on_tick(snapshot(1), 1, deadline=500)
        dropped = engine.drop_stale(now=100)
        assert len(dropped) == 1
        assert engine.dropped_stale == 1
        assert engine.pending_count() == 1

    def test_drop_oldest(self):
        engine = OffloadEngine(window=1)
        first = engine.on_tick(snapshot(0), 0, 100)
        engine.on_tick(snapshot(1), 1, 101)
        victim = engine.drop_oldest()
        assert victim is first
        assert engine.dropped_unschedulable == 1

    def test_pending_deadlines(self):
        engine = OffloadEngine(window=1)
        for i in range(4):
            engine.on_tick(snapshot(i), i, 100 + i)
        assert engine.pending_deadlines(2) == [100, 101]
        assert engine.pending_deadlines(10) == [100, 101, 102, 103]

    def test_invalid_params_rejected(self):
        with pytest.raises(SchedulingError):
            OffloadEngine(window=0)
        with pytest.raises(SchedulingError):
            OffloadEngine(max_pending=0)
        with pytest.raises(SchedulingError):
            OffloadEngine(window=1).pop_batch(0)


class TestTradingEngine:
    def probs(self, prediction, confidence=0.8):
        p = np.full(3, (1 - confidence) / 2)
        p[prediction] = confidence
        return p

    def test_up_prediction_buys(self):
        engine = TradingEngine()
        decision = engine.on_inference(self.probs(Prediction.UP), snapshot(), 1000)
        assert decision.acted
        assert decision.side is Side.BID
        assert engine.position == 1
        order = ILink3Order.decode(decision.encoded)
        assert order.side is Side.BID

    def test_down_prediction_sells(self):
        engine = TradingEngine()
        decision = engine.on_inference(self.probs(Prediction.DOWN), snapshot(), 1000)
        assert decision.side is Side.ASK
        assert engine.position == -1

    def test_stationary_no_action(self):
        engine = TradingEngine()
        decision = engine.on_inference(self.probs(Prediction.STATIONARY), snapshot(), 0)
        assert not decision.acted
        assert engine.counters.stationary == 1

    def test_low_confidence_suppressed(self):
        engine = TradingEngine(limits=RiskLimits(min_confidence=0.9))
        decision = engine.on_inference(self.probs(Prediction.UP, 0.5), snapshot(), 0)
        assert not decision.acted
        assert engine.counters.low_confidence == 1

    def test_position_limit(self):
        engine = TradingEngine(limits=RiskLimits(max_position=2))
        for i in range(5):
            engine.on_inference(self.probs(Prediction.UP), snapshot(), i)
        assert engine.position == 2
        assert engine.counters.position_limit == 3

    def test_rate_limit(self):
        engine = TradingEngine(limits=RiskLimits(max_orders_per_second=3))
        for i in range(5):
            engine.on_inference(self.probs(Prediction.UP), snapshot(ts=i), i)
        assert engine.counters.accepted == 3
        assert engine.counters.rate_limit == 2

    def test_one_sided_market_no_order(self):
        engine = TradingEngine()
        one_sided = DepthSnapshot(
            symbol="ESU6", timestamp=0, depth=10, bids=((18_000, 5),), asks=()
        )
        decision = engine.on_inference(self.probs(Prediction.UP), one_sided, 0)
        assert not decision.acted
        assert engine.counters.no_market == 1

    def test_bad_probability_shape_rejected(self):
        with pytest.raises(SchedulingError):
            TradingEngine().on_inference(np.zeros(5), snapshot(), 0)

    def test_price_clamped_to_band(self):
        engine = TradingEngine(limits=RiskLimits(max_ticks_from_mid=2))
        wild = DepthSnapshot(
            symbol="ESU6",
            timestamp=0,
            depth=10,
            bids=((17_000, 5),),
            asks=((19_000, 5),),  # mid 18_000, touch far away
        )
        decision = engine.on_inference(self.probs(Prediction.UP), wild, 0)
        assert decision.acted
        assert abs(decision.price - 18_000) <= 2


class TestDMAModel:
    def test_round_trip_positive_and_monotone(self):
        dma = DMAModel()
        times = [dma.round_trip_ns(bs) for bs in (1, 2, 8, 16)]
        assert all(t > 0 for t in times)
        assert times == sorted(times)

    def test_invalid_batch_rejected(self):
        with pytest.raises(SchedulingError):
            DMAModel().round_trip_ns(0)

    def test_setup_dominates_tiny_batches(self):
        dma = DMAModel()
        # Per-sample marginal cost is far below the fixed setup.
        marginal = dma.input_transfer_ns(2) - dma.input_transfer_ns(1)
        assert marginal < dma.input_transfer_ns(1)


class TestStages:
    def test_total_about_one_microsecond(self):
        assert 500 <= DEFAULT_STAGES.total_ns <= 2_000

    def test_pre_post_partition(self):
        assert (
            DEFAULT_STAGES.pre_inference_ns + DEFAULT_STAGES.post_inference_ns
            == DEFAULT_STAGES.total_ns
        )


class TestFeedHandlerIntegration:
    def test_frames_update_mirror(self):
        directory = SecurityDirectory()
        directory.register("ESU6")
        handler = FeedHandler(PacketParser(directory, {"ESU6"}))
        events = [
            BookUpdate("ESU6", 10, UpdateAction.NEW, Side.BID, 18_000, 7, 1),
            BookUpdate("ESU6", 10, UpdateAction.NEW, Side.ASK, 18_002, 4, 2),
        ]
        frame = encode_udp_frame(encode_market_events(events, directory, 10))
        snapshots = handler.on_frame(frame)
        assert len(snapshots) == 1
        snap = snapshots[0]
        assert snap.best_bid == 18_000
        assert snap.best_ask == 18_002
        assert snap.bids[0][1] == 7

    def test_change_and_delete(self):
        directory = SecurityDirectory()
        directory.register("ESU6")
        handler = FeedHandler(PacketParser(directory))
        mirror = handler.mirror("ESU6")
        mirror.apply(BookUpdate("ESU6", 1, UpdateAction.NEW, Side.BID, 18_000, 5, 1))
        mirror.apply(BookUpdate("ESU6", 2, UpdateAction.CHANGE, Side.BID, 18_000, 9, 2))
        assert mirror.book.bids.level_at(18_000).volume == 9
        mirror.apply(BookUpdate("ESU6", 3, UpdateAction.DELETE, Side.BID, 18_000, 0, 3))
        assert mirror.book.bids.is_empty

    def test_trade_updates_last_trade(self):
        mirror = LocalBookMirror("ESU6")
        mirror.apply(TradeTick("ESU6", 5, 18_001, 3, Side.BID, 1))
        snap = mirror.snapshot(6)
        assert snap.last_trade_price == 18_001
        assert snap.last_trade_quantity == 3

    def test_end_to_end_market_to_features(self):
        """Exchange events -> SBE -> UDP -> parser -> mirror -> tensor."""
        from repro.lob import MatchingEngine, Order

        directory = SecurityDirectory()
        directory.register("ESU6")
        handler = FeedHandler(PacketParser(directory))
        exchange = MatchingEngine()
        offload = OffloadEngine(window=2, store_tensors=True)

        query = None
        for i, (side, price) in enumerate(
            [(Side.BID, 18_000), (Side.ASK, 18_002), (Side.BID, 17_999), (Side.ASK, 18_003)]
        ):
            result = exchange.submit("ESU6", Order(side=side, price=price, quantity=5), i)
            frame = encode_udp_frame(encode_market_events(result.events, directory, i))
            for snap in handler.on_frame(frame):
                query = offload.on_tick(snap, i, i + 1000) or query
        assert query is not None
        assert query.tensor.shape == (2, 40)


class TestSequencedFeed:
    """Feed loss/reorder/duplication: gap detection and snapshot resync."""

    @staticmethod
    def _handler():
        directory = SecurityDirectory()
        directory.register("ESU6")
        return FeedHandler(PacketParser(directory)), directory

    @staticmethod
    def _frame(directory, sequence, events, ts):
        from repro.protocol.framing import encode_sequenced_payload

        return encode_udp_frame(
            encode_sequenced_payload(
                sequence, encode_market_events(events, directory, ts)
            )
        )

    def _update(self, i, price=18_000, side=Side.BID, volume=5):
        return BookUpdate("ESU6", i, UpdateAction.NEW, side, price, volume, i)

    def test_in_order_stream_emits_snapshots(self):
        handler, directory = self._handler()
        for sequence in range(3):
            frame = self._frame(
                directory,
                sequence,
                [self._update(sequence, price=18_000 - sequence)],
                sequence,
            )
            assert handler.on_sequenced_frame(frame)
        assert handler.sequence.gaps == 0
        assert handler.sequence.lost_packets == 0

    def test_duplicate_suppressed(self):
        handler, directory = self._handler()
        frame = self._frame(directory, 0, [self._update(0)], 0)
        assert handler.on_sequenced_frame(frame)
        # The same datagram again: dropped before touching the mirror.
        assert handler.on_sequenced_frame(frame) == []
        assert handler.sequence.duplicates == 1
        assert handler.suppressed_duplicates == 1
        assert handler.mirror("ESU6").book.bids.level_at(18_000).volume == 5

    def test_gap_marks_mirror_stale_and_withholds_snapshots(self):
        handler, directory = self._handler()
        handler.on_sequenced_frame(self._frame(directory, 0, [self._update(0)], 0))
        # Sequence 1 is lost; 2 arrives.
        snapshots = handler.on_sequenced_frame(
            self._frame(directory, 2, [self._update(2, price=17_999)], 2)
        )
        assert snapshots == []  # stale mirror: no model input from it
        assert handler.sequence.gaps == 1
        assert handler.sequence.lost_packets == 1
        mirror = handler.mirror("ESU6")
        assert mirror.stale
        # Updates still applied (freshest data beats none).
        assert mirror.book.bids.level_at(17_999).volume == 5

    def test_resync_from_snapshot_channel(self):
        handler, directory = self._handler()
        handler.on_sequenced_frame(self._frame(directory, 0, [self._update(0)], 0))
        handler.on_sequenced_frame(
            self._frame(directory, 5, [self._update(5, price=17_998)], 5)
        )
        assert handler.mirror("ESU6").stale
        authoritative = DepthSnapshot(
            symbol="ESU6",
            timestamp=6,
            depth=10,
            bids=((18_000, 9), (17_999, 2)),
            asks=((18_002, 4),),
            last_trade_price=18_001,
            last_trade_quantity=3,
        )
        handler.on_snapshot("ESU6", authoritative)
        mirror = handler.mirror("ESU6")
        assert not mirror.stale
        assert mirror.book.bids.level_at(18_000).volume == 9
        assert mirror.book.asks.level_at(18_002).volume == 4
        assert mirror.last_trade_price == 18_001
        # Post-resync frames emit snapshots again.
        emitted = handler.on_sequenced_frame(
            self._frame(directory, 6, [self._update(6, price=17_997)], 6)
        )
        assert len(emitted) == 1
        assert emitted[0].best_bid == 18_000

    def test_resynced_mirror_keeps_applying_incrementals(self):
        mirror = LocalBookMirror("ESU6")
        mirror.invalidate()
        snap = DepthSnapshot(
            symbol="ESU6",
            timestamp=1,
            depth=10,
            bids=((18_000, 5),),
            asks=((18_002, 4),),
        )
        mirror.resync(snap)
        mirror.apply(
            BookUpdate("ESU6", 2, UpdateAction.CHANGE, Side.BID, 18_000, 8, 2)
        )
        assert mirror.book.bids.level_at(18_000).volume == 8


class TestSequenceTracker:
    def test_verdict_sequence(self):
        from repro.pipeline.feed_handler import (
            SEQ_DUPLICATE,
            SEQ_FIRST,
            SEQ_GAP,
            SEQ_OK,
            SequenceTracker,
        )

        tracker = SequenceTracker()
        assert tracker.observe(10) == SEQ_FIRST
        assert tracker.observe(11) == SEQ_OK
        assert tracker.observe(11) == SEQ_DUPLICATE
        assert tracker.observe(14) == SEQ_GAP
        assert tracker.lost_packets == 2  # 12 and 13
        assert tracker.observe(15) == SEQ_OK


class TestCorruptVectorRejection:
    def test_non_finite_vector_refused_at_ingest(self):
        engine = OffloadEngine(window=2, store_tensors=True)
        bad = DepthSnapshot(
            symbol="ESU6",
            timestamp=0,
            depth=10,
            bids=((float("nan"), 5),),  # corrupt price off the wire
            asks=((18_002, 4),),
        )
        assert engine.on_tick(bad, 0, 1_000) is None
        assert engine.rejected_corrupt == 1
        assert len(engine._fifo) == 0  # nothing contaminated the FIFO

    def test_finite_vectors_unaffected(self):
        engine = OffloadEngine(window=2, store_tensors=True)
        assert engine.on_tick(snapshot(ts=0), 0, 1_000) is None  # warm-up
        query = engine.on_tick(snapshot(ts=1), 1, 1_001)
        assert query is not None
        assert engine.rejected_corrupt == 0
        assert np.isfinite(query.tensor).all()
