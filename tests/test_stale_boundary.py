"""Regression tests pinning the repo-wide deadline boundary convention.

The convention, stated once and enforced everywhere:

- a query still pending when ``now == deadline`` is **stale** (inference
  takes strictly positive time, so it can no longer finish in time),
- a completion landing exactly at the deadline is **in time**,
- issue feasibility is ``now + fastest <= deadline``.

These tests exist so a future refactor cannot silently flip any ``<=``
to ``<`` (or vice versa) in one layer without the others noticing.
"""

from repro.accelerator.power import DVFSTable
from repro.baselines.profiles import lighttrader_profile
from repro.core.scheduler import WorkloadScheduler
from repro.pipeline.offload import OffloadEngine, Query


def _query(query_id: int, deadline: int) -> Query:
    return Query(query_id=query_id, tick_index=query_id, arrival=0, deadline=deadline)


def _engine_with(*queries: Query) -> OffloadEngine:
    engine = OffloadEngine(window=1, store_tensors=False)
    for query in queries:
        engine.admit(query)
    return engine


class TestOffloadDropStale:
    def test_deadline_equal_now_is_stale(self):
        engine = _engine_with(_query(0, deadline=100))
        dropped = engine.drop_stale(100)
        assert [q.query_id for q in dropped] == [0]
        assert dropped[0].drop_reason == "stale"
        assert engine.pending_count() == 0

    def test_deadline_one_past_now_survives(self):
        engine = _engine_with(_query(0, deadline=101))
        assert engine.drop_stale(100) == []
        assert engine.pending_count() == 1

    def test_mixed_boundary(self):
        engine = _engine_with(
            _query(0, deadline=99), _query(1, deadline=100), _query(2, deadline=101)
        )
        dropped = engine.drop_stale(100)
        assert sorted(q.query_id for q in dropped) == [0, 1]
        assert engine.pending_count() == 1

    def test_requeue_front_restores_scan_bound(self):
        # A re-issued query with an earlier deadline than anything pending
        # must lower the stale-scan bound, or drop_stale would skip it.
        engine = _engine_with(_query(0, deadline=1_000))
        engine.drop_stale(500)  # raises the internal bound to 1_000
        surrendered = _query(1, deadline=600)
        engine.requeue_front([surrendered])
        dropped = engine.drop_stale(600)
        assert [q.query_id for q in dropped] == [1]
        assert engine.pending_count() == 1

    def test_requeue_front_preserves_order(self):
        engine = _engine_with(_query(2, deadline=900))
        engine.requeue_front([_query(0, deadline=800), _query(1, deadline=850)])
        dropped = engine.drop_stale(10_000)
        assert [q.query_id for q in dropped] == [0, 1, 2]


class TestCompletionBoundary:
    def test_completion_at_deadline_in_time(self):
        query = _query(0, deadline=100)
        query.completion_time = 100
        assert query.in_time()

    def test_completion_past_deadline_late(self):
        query = _query(0, deadline=100)
        query.completion_time = 101
        assert not query.in_time()


class TestFeasibilityBoundary:
    def test_feasible_exactly_at_deadline(self):
        profile = lighttrader_profile()
        scheduler = WorkloadScheduler(profile, DVFSTable(cap_hz=2.2e9))
        now = 1_000_000
        fastest = profile.t_total_ns(
            "deeplob", scheduler.table.max_point, 1
        )
        assert scheduler.deadline_feasible("deeplob", now, now + fastest)
        assert not scheduler.deadline_feasible("deeplob", now, now + fastest - 1)
        # And the stale rule's contrapositive: deadline == now is hopeless.
        assert not scheduler.deadline_feasible("deeplob", now, now)
