"""Tests for DVFS table, power model and Table-III calibration."""

import pytest

from repro import paperdata
from repro.accelerator import (
    DEFAULT_CONFIG,
    AcceleratorConfig,
    DVFSTable,
    K_FULL_UTILISATION,
    OperatingPoint,
    PowerModel,
    build_static_table,
    fit_activity_coefficients,
)
from repro.errors import AcceleratorError
from repro.units import GHZ


class TestConfig:
    def test_peak_tflops_matches_table1(self):
        assert DEFAULT_CONFIG.peak_tflops() == pytest.approx(
            paperdata.TABLE1_BF16_TFLOPS, rel=0.05
        )

    def test_peak_int8_tops_matches_table1(self):
        assert DEFAULT_CONFIG.peak_int8_tops() == pytest.approx(
            paperdata.TABLE1_INT8_TOPS, rel=0.05
        )

    def test_voltage_envelope(self):
        assert DEFAULT_CONFIG.voltage_at(0.8 * GHZ) == pytest.approx(0.68)
        assert DEFAULT_CONFIG.voltage_at(2.2 * GHZ) == pytest.approx(1.16)

    def test_voltage_out_of_range_rejected(self):
        with pytest.raises(AcceleratorError):
            DEFAULT_CONFIG.voltage_at(3.0 * GHZ)

    def test_invalid_configs_rejected(self):
        with pytest.raises(AcceleratorError):
            AcceleratorConfig(epe_cols=99)
        with pytest.raises(AcceleratorError):
            AcceleratorConfig(min_freq_hz=3e9)


class TestDVFSTable:
    def test_points_cover_envelope(self):
        table = DVFSTable()
        assert table.min_point.freq_ghz == pytest.approx(0.8)
        assert table.max_point.freq_ghz == pytest.approx(2.2)
        assert len(table) == 15  # 0.8 .. 2.2 in 0.1 steps

    def test_cap_limits_table(self):
        table = DVFSTable(cap_hz=paperdata.TABLE3_CONSERVATIVE_CAP_HZ)
        assert table.max_point.freq_ghz == pytest.approx(2.0)

    def test_voltage_monotone_in_frequency(self):
        table = DVFSTable()
        voltages = [p.voltage for p in table]
        assert voltages == sorted(voltages)

    def test_next_up_down(self):
        table = DVFSTable()
        mid = table.at_ghz(1.5)
        assert table.next_up(mid).freq_ghz == pytest.approx(1.6)
        assert table.next_down(mid).freq_ghz == pytest.approx(1.4)
        assert table.next_up(table.max_point) is None
        assert table.next_down(table.min_point) is None

    def test_missing_point_rejected(self):
        with pytest.raises(AcceleratorError):
            DVFSTable().at_ghz(1.55)


class TestPowerModel:
    @pytest.fixture
    def model(self):
        return PowerModel()

    def test_power_monotone_in_frequency(self, model):
        table = DVFSTable()
        powers = [model.power_w(p, activity=1.5) for p in table]
        assert powers == sorted(powers)

    def test_power_monotone_in_activity(self, model):
        point = DVFSTable().at_ghz(2.0)
        assert model.power_w(point, 1.0) < model.power_w(point, 2.0)

    def test_power_rises_with_batch(self, model):
        point = DVFSTable().at_ghz(2.0)
        p1 = model.power_w(point, 1.5, batch_size=1)
        p8 = model.power_w(point, 1.5, batch_size=8)
        assert p8 > p1
        assert p8 < p1 * 1.35  # bounded by the batch activity gain

    def test_full_utilisation_hits_package_ceiling(self, model):
        point = OperatingPoint(freq_hz=2.2 * GHZ, voltage=1.16)
        assert model.power_w(point, K_FULL_UTILISATION) == pytest.approx(
            paperdata.TABLE1_MAX_POWER_W, rel=1e-6
        )

    def test_idle_below_active(self, model):
        point = DVFSTable().at_ghz(1.0)
        assert model.idle_power_w(point) < model.power_w(point, 0.5)

    def test_select_max_frequency(self, model):
        table = DVFSTable(cap_hz=2.0 * GHZ)
        point = model.select_max_frequency(table, activity=1.5, budget_w=2.0)
        assert point is not None
        assert model.power_w(point, 1.5) <= 2.0
        up = table.next_up(point)
        if up is not None:
            assert model.power_w(up, 1.5) > 2.0

    def test_select_none_when_budget_too_small(self, model):
        table = DVFSTable()
        assert model.select_max_frequency(table, activity=2.0, budget_w=0.01) is None

    def test_invalid_inputs_rejected(self, model):
        point = DVFSTable().at_ghz(1.0)
        with pytest.raises(AcceleratorError):
            model.power_w(point, activity=-1.0)
        with pytest.raises(AcceleratorError):
            model.power_w(point, activity=1.0, batch_size=0)


class TestTable3Calibration:
    @pytest.fixture(scope="class")
    def coefficients(self):
        return fit_activity_coefficients()

    def test_coefficients_ordered_by_complexity(self, coefficients):
        assert (
            coefficients["vanilla_cnn"]
            < coefficients["translob"]
            < coefficients["deeplob"]
        )

    def test_coefficients_below_full_utilisation(self, coefficients):
        for k in coefficients.values():
            assert 0 < k < K_FULL_UTILISATION

    def test_reproduces_table3_within_one_step(self, coefficients):
        """Every regenerated cell within 0.1 GHz of the published value."""
        ours = build_static_table(coefficients)
        mismatches = 0
        for condition in ("sufficient", "limited"):
            for model, row in paperdata.TABLE3_FREQ_GHZ[condition].items():
                for n, paper_freq in row.items():
                    diff = abs(ours[condition][model][n] - paper_freq)
                    assert diff <= 0.1 + 1e-9
                    if diff > 1e-9:
                        mismatches += 1
        # At most a couple of one-step deviations across all 30 cells.
        assert mismatches <= 3

    def test_exact_match_majority(self, coefficients):
        ours = build_static_table(coefficients)
        exact = sum(
            1
            for condition in ("sufficient", "limited")
            for model, row in paperdata.TABLE3_FREQ_GHZ[condition].items()
            for n, paper_freq in row.items()
            if abs(ours[condition][model][n] - paper_freq) < 1e-9
        )
        assert exact >= 27  # 30 cells total
