"""Unit tests for the limit order book container."""

import pytest

from repro.errors import OrderBookError
from repro.lob import LimitOrderBook, Order, PriceLevel, Side


def make_order(side=Side.BID, price=100, quantity=5, **kwargs):
    return Order(side=side, price=price, quantity=quantity, **kwargs)


class TestPriceLevel:
    def test_append_accumulates_volume(self):
        level = PriceLevel(100)
        level.append(make_order(quantity=5))
        level.append(make_order(quantity=7))
        assert level.volume == 12
        assert len(level) == 2

    def test_fifo_order(self):
        level = PriceLevel(100)
        first = make_order()
        second = make_order()
        level.append(first)
        level.append(second)
        assert level.peek() is first

    def test_duplicate_id_rejected(self):
        level = PriceLevel(100)
        order = make_order()
        level.append(order)
        with pytest.raises(OrderBookError):
            level.append(order)

    def test_reduce_pops_exhausted_order(self):
        level = PriceLevel(100)
        order = make_order(quantity=5)
        level.append(order)
        level.reduce(order, 5)
        assert level.is_empty
        assert level.volume == 0

    def test_reduce_partial_keeps_order(self):
        level = PriceLevel(100)
        order = make_order(quantity=5)
        level.append(order)
        level.reduce(order, 2)
        assert order.remaining == 3
        assert level.volume == 3
        assert level.peek() is order

    def test_reduce_beyond_remaining_rejected(self):
        level = PriceLevel(100)
        order = make_order(quantity=5)
        level.append(order)
        with pytest.raises(OrderBookError):
            level.reduce(order, 6)

    def test_peek_empty_raises(self):
        with pytest.raises(OrderBookError):
            PriceLevel(100).peek()

    def test_remove_credits_volume(self):
        level = PriceLevel(100)
        a, b = make_order(quantity=5), make_order(quantity=3)
        level.append(a)
        level.append(b)
        level.remove(a)
        assert level.volume == 3
        assert level.peek() is b


class TestBookSide:
    def test_best_price_bid_is_highest(self):
        book = LimitOrderBook("ES")
        book.insert(make_order(price=100))
        book.insert(make_order(price=102))
        book.insert(make_order(price=101))
        assert book.best_bid == 102

    def test_best_price_ask_is_lowest(self):
        book = LimitOrderBook("ES")
        book.insert(make_order(side=Side.ASK, price=105))
        book.insert(make_order(side=Side.ASK, price=103))
        assert book.best_ask == 103

    def test_top_depth_ordering(self):
        book = LimitOrderBook("ES")
        for price, qty in [(100, 1), (99, 2), (101, 3)]:
            book.insert(make_order(price=price, quantity=qty))
        top = book.bids.top(2)
        assert top == [(101, 3), (100, 1)]

    def test_empty_side(self):
        book = LimitOrderBook("ES")
        assert book.bids.best_price() is None
        assert book.bids.top(5) == []
        assert book.bids.is_empty

    def test_crosses(self):
        book = LimitOrderBook("ES")
        book.insert(make_order(price=100))
        assert book.bids.crosses(100)  # ask at 100 hits bid 100
        assert book.bids.crosses(99)
        assert not book.bids.crosses(101)


class TestLimitOrderBook:
    def test_insert_find_remove(self):
        book = LimitOrderBook("ES")
        order = make_order()
        book.insert(order)
        assert order.order_id in book
        assert book.find(order.order_id) is order
        removed = book.remove(order.order_id)
        assert removed is order
        assert order.order_id not in book
        assert book.bids.is_empty

    def test_find_missing_raises(self):
        with pytest.raises(OrderBookError):
            LimitOrderBook("ES").find(12345)

    def test_double_insert_rejected(self):
        book = LimitOrderBook("ES")
        order = make_order()
        book.insert(order)
        with pytest.raises(OrderBookError):
            book.insert(order)

    def test_reduce_exhausts_and_drops_level(self):
        book = LimitOrderBook("ES")
        order = make_order(quantity=4)
        book.insert(order)
        book.reduce(order.order_id, 4)
        assert order.order_id not in book
        assert book.bids.is_empty

    def test_mid_and_spread(self):
        book = LimitOrderBook("ES")
        book.insert(make_order(side=Side.BID, price=100))
        book.insert(make_order(side=Side.ASK, price=104))
        assert book.mid_price == 102
        assert book.spread == 4
        assert not book.is_crossed()

    def test_mid_none_when_one_sided(self):
        book = LimitOrderBook("ES")
        book.insert(make_order(price=100))
        assert book.mid_price is None
        assert book.spread is None

    def test_len_counts_resting_orders(self):
        book = LimitOrderBook("ES")
        book.insert(make_order())
        book.insert(make_order(side=Side.ASK, price=105))
        assert len(book) == 2


class TestOrderValidation:
    def test_nonpositive_quantity_rejected(self):
        with pytest.raises(OrderBookError):
            Order(side=Side.BID, price=100, quantity=0)

    def test_nonpositive_limit_price_rejected(self):
        with pytest.raises(OrderBookError):
            Order(side=Side.BID, price=0, quantity=1)

    def test_side_opposite_and_sign(self):
        assert Side.BID.opposite is Side.ASK
        assert Side.ASK.opposite is Side.BID
        assert Side.BID.sign == 1
        assert Side.ASK.sign == -1

    def test_remaining_defaults_to_quantity(self):
        order = make_order(quantity=9)
        assert order.remaining == 9
        assert order.filled == 0
        assert not order.is_done
