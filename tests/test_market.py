"""Tests for the Hawkes process, agents, market simulator and tick tape."""

import numpy as np
import pytest

from repro.market import (
    BURSTY,
    CALM,
    HawkesParams,
    HawkesProcess,
    MarketConfig,
    MarketSimulator,
    TickTape,
    generate_session,
    sample_arrivals,
    traffic_stats,
)
from repro.units import sec_to_ns


class TestHawkesParams:
    def test_mean_rate(self):
        p = HawkesParams(mu=100.0, alpha=0.5, beta=10.0)
        assert p.mean_rate == pytest.approx(200.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mu": 0, "alpha": 0.5, "beta": 1},
            {"mu": 10, "alpha": 1.0, "beta": 1},
            {"mu": 10, "alpha": -0.1, "beta": 1},
            {"mu": 10, "alpha": 0.5, "beta": 0},
        ],
    )
    def test_invalid_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            HawkesParams(**kwargs)


class TestHawkesSampling:
    def test_deterministic_given_seed(self):
        a = sample_arrivals(CALM, sec_to_ns(2.0), seed=7)
        b = sample_arrivals(CALM, sec_to_ns(2.0), seed=7)
        np.testing.assert_array_equal(a, b)

    def test_sorted_within_horizon(self):
        times = sample_arrivals(CALM, sec_to_ns(2.0), seed=1)
        assert (np.diff(times) >= 0).all()
        assert times[-1] < sec_to_ns(2.0)

    def test_empirical_rate_near_stationary_mean(self):
        params = HawkesParams(mu=500.0, alpha=0.5, beta=200.0)
        times = sample_arrivals(params, sec_to_ns(20.0), seed=3)
        rate = len(times) / 20.0
        assert rate == pytest.approx(params.mean_rate, rel=0.15)

    def test_bursty_params_cluster_more_than_calm(self):
        bursty = traffic_stats(sample_arrivals(BURSTY, sec_to_ns(10.0), seed=5))
        calm = traffic_stats(sample_arrivals(CALM, sec_to_ns(10.0), seed=5))
        assert bursty.cv > calm.cv
        assert bursty.burstiness > calm.burstiness

    def test_intensity_decays_between_events(self):
        process = HawkesProcess(BURSTY, np.random.default_rng(0))
        t = process.next_event()
        lam_now = process.intensity_at(t)
        lam_later = process.intensity_at(t + 0.01)
        assert lam_later < lam_now
        assert lam_later >= BURSTY.mu


class TestTrafficStats:
    def test_poisson_has_cv_near_one(self):
        rng = np.random.default_rng(0)
        gaps = rng.exponential(1e6, size=20_000)
        times = np.cumsum(gaps).astype(np.int64)
        stats = traffic_stats(times)
        assert stats.cv == pytest.approx(1.0, abs=0.05)
        assert abs(stats.burstiness) < 0.05

    def test_degenerate_inputs(self):
        stats = traffic_stats(np.array([], dtype=np.int64))
        assert stats.n_ticks == 0
        stats = traffic_stats(np.array([5], dtype=np.int64))
        assert stats.mean_rate_hz == 0.0

    def test_peak_rate_at_least_mean(self):
        times = sample_arrivals(BURSTY, sec_to_ns(5.0), seed=2)
        stats = traffic_stats(times)
        assert stats.peak_rate_hz >= stats.mean_rate_hz

    def test_describe_mentions_key_numbers(self):
        from repro.market import describe

        times = sample_arrivals(CALM, sec_to_ns(2.0), seed=2)
        text = describe(traffic_stats(times))
        assert "ticks" in text and "burst" in text


class TestMarketSimulator:
    @pytest.fixture(scope="class")
    def tape(self):
        return generate_session(duration_s=3.0, seed=11)

    def test_tape_is_nonempty_and_ordered(self, tape):
        assert len(tape) > 100
        assert (np.diff(tape.timestamps) >= 0).all()

    def test_snapshots_are_two_sided_mostly(self, tape):
        mids = tape.mid_prices()
        assert np.isfinite(mids).mean() > 0.95

    def test_book_stays_near_initial_price(self, tape):
        mids = tape.mid_prices()
        mids = mids[np.isfinite(mids)]
        assert abs(mids.mean() - 18_000) < 300

    def test_deterministic(self):
        a = generate_session(duration_s=1.0, seed=4)
        b = generate_session(duration_s=1.0, seed=4)
        assert len(a) == len(b)
        np.testing.assert_array_equal(a.timestamps, b.timestamps)
        np.testing.assert_array_equal(a.feature_matrix(), b.feature_matrix())

    def test_different_seeds_differ(self):
        a = generate_session(duration_s=1.0, seed=4)
        b = generate_session(duration_s=1.0, seed=5)
        assert len(a) != len(b) or not np.array_equal(a.timestamps, b.timestamps)

    def test_max_ticks_cap(self):
        tape = MarketSimulator(MarketConfig(), seed=0).generate(5.0, max_ticks=50)
        assert len(tape) == 50

    def test_feature_matrix_shape(self, tape):
        feats = tape.feature_matrix()
        assert feats.shape == (len(tape), 40)


class TestTickTape:
    def test_save_load_roundtrip(self, tmp_path):
        tape = generate_session(duration_s=1.0, seed=9)
        path = tmp_path / "tape.ndjson"
        tape.save(path)
        loaded = TickTape.load(path)
        assert len(loaded) == len(tape)
        np.testing.assert_array_equal(loaded.timestamps, tape.timestamps)
        np.testing.assert_array_equal(loaded.feature_matrix(), tape.feature_matrix())

    def test_unordered_rejected(self):
        tape = generate_session(duration_s=1.0, seed=9)
        with pytest.raises(ValueError):
            TickTape([tape[5], tape[1]])

    def test_slicing_returns_tape(self):
        tape = generate_session(duration_s=1.0, seed=9)
        head = tape[:10]
        assert isinstance(head, TickTape)
        assert len(head) == 10

    def test_horizon_deadline(self):
        tape = generate_session(duration_s=1.0, seed=9)
        deadline = tape.horizon_deadline(0, 10)
        assert deadline == tape[10].timestamp
        assert tape.horizon_deadline(len(tape) - 1, 10) is None

    def test_inter_arrival_lengths(self):
        tape = generate_session(duration_s=1.0, seed=9)
        assert len(tape.inter_arrival_ns()) == len(tape) - 1
