"""Unit tests for the repro.metrics layer.

Covers the log2 histogram's bucket geometry and quantile accuracy, the
registry's get-or-create / disabled-null semantics, the impl. namespace
exclusion, Prometheus exposition, manifest round-trips, and the
regression-diff engine + CLI — including the acceptance scenario: a
synthetic 10% tick-to-trade p99 inflation must exit nonzero while two
identical runs diff clean.
"""

from __future__ import annotations

import copy
import json

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.metrics import (
    IMPL_PREFIX,
    Counter,
    Gauge,
    Log2Histogram,
    MetricRegistry,
    NULL_METRICS,
    bucket_bounds,
    bucket_index,
    exposition,
)
from repro.metrics.__main__ import main as metrics_main
from repro.metrics.diff import (
    diff_manifests,
    flatten_manifest,
    metric_direction,
    render_diff,
)
from repro.metrics.manifest import (
    SCHEMA,
    build_manifest,
    env_snapshot,
    load_manifest,
    write_manifest,
)


class TestBucketGeometry:
    def test_roundtrip_small_values_exact(self):
        for v in range(64):
            idx = bucket_index(v)
            lo, hi = bucket_bounds(idx)
            assert lo == v and hi == v + 1

    def test_roundtrip_large_values(self):
        probes = [64, 65, 127, 128, 1000, 2**20, 2**20 + 17, 2**40, 2**62]
        probes += [2**e + d for e in range(7, 63, 5) for d in (-1, 0, 1)]
        probes.append(2**63 - 1)
        for v in probes:
            idx = bucket_index(v)
            lo, hi = bucket_bounds(idx)
            assert lo <= v < hi, (v, idx, lo, hi)

    def test_buckets_are_contiguous(self):
        prev_hi = 0
        for idx in range(1888):
            lo, hi = bucket_bounds(idx)
            assert lo == prev_hi
            assert hi > lo
            prev_hi = hi
        assert prev_hi > 2**63 - 1

    def test_worst_case_relative_resolution(self):
        # 32 sub-buckets per octave: bucket width / lower bound <= 1/32,
        # so any quantile estimate is within ~3.2% of the true value.
        for idx in range(64, 1888):
            lo, hi = bucket_bounds(idx)
            assert (hi - lo) / lo <= 1 / 32 + 1e-12

    def test_negative_values_clamp_to_zero_bin(self):
        hist = Log2Histogram("h")
        hist.record(-5)
        assert hist.count == 1
        assert hist.min == -5  # true min retained even though binned at 0


class TestHistogram:
    def test_percentiles_track_exact_within_resolution(self):
        rng = np.random.default_rng(7)
        samples = rng.lognormal(mean=11.0, sigma=0.6, size=20_000).astype(np.int64)
        hist = Log2Histogram("t2t")
        for v in samples:
            hist.record(int(v))
        for q in (50.0, 90.0, 99.0):
            exact = float(np.percentile(samples, q))
            est = hist.percentile(q)
            assert abs(est - exact) / exact < 0.04, (q, exact, est)

    def test_to_dict_empty_and_populated(self):
        hist = Log2Histogram("h")
        assert hist.to_dict() == {"count": 0}
        hist.record(100)
        hist.record(300)
        d = hist.to_dict()
        assert d["count"] == 2
        assert d["min"] == 100 and d["max"] == 300
        assert 100 <= d["p50"] <= 300

    def test_percentile_clamped_to_observed_range(self):
        hist = Log2Histogram("h")
        hist.record(1000)
        assert hist.percentile(1.0) == 1000
        assert hist.percentile(99.9) == 1000


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricRegistry()
        c = reg.counter("a")
        assert reg.counter("a") is c
        assert isinstance(c, Counter)
        g = reg.gauge("b")
        assert reg.gauge("b") is g
        assert isinstance(g, Gauge)
        h = reg.histogram("c")
        assert reg.histogram("c") is h
        assert isinstance(h, Log2Histogram)

    def test_disabled_registry_hands_out_shared_null(self):
        reg = MetricRegistry(enabled=False)
        null = reg.counter("a")
        assert reg.gauge("b") is null
        assert reg.histogram("c") is null
        assert NULL_METRICS.counter("x") is null
        null.inc()
        null.set(3.0)
        null.record(10)
        assert null.to_dict() == {}
        assert reg.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_public_snapshot_excludes_impl_namespace(self):
        reg = MetricRegistry()
        reg.counter("queries.responded").inc(5)
        reg.counter(IMPL_PREFIX + "memo.hits").inc(100)
        reg.histogram(IMPL_PREFIX + "probe").record(1)
        full = reg.snapshot()
        public = reg.public_snapshot()
        assert IMPL_PREFIX + "memo.hits" in full["counters"]
        assert IMPL_PREFIX + "memo.hits" not in public["counters"]
        assert IMPL_PREFIX + "probe" not in public["histograms"]
        assert public["counters"]["queries.responded"] == 5

    def test_gauge_tracks_max(self):
        reg = MetricRegistry()
        g = reg.gauge("power.rail_w")
        g.set(3.0)
        g.set(12.5)
        g.set(1.0)
        snap = reg.snapshot()["gauges"]["power.rail_w"]
        assert snap == {"value": 1.0, "max": 12.5}

    def test_flush_emits_on_sim_time_cadence(self):
        reg = MetricRegistry()
        events: list[dict] = []
        reg.bind_flush(events.append, interval_ns=1000, start_ns=0)
        reg.counter("ticks").inc()
        reg.maybe_flush(500)
        assert not events
        reg.maybe_flush(1000)
        assert len(events) == 1
        assert events[0]["type"] == "metrics"
        assert events[0]["t_ns"] == 1000 and events[0]["seq"] == 0
        assert events[0]["counters"]["ticks"] == 1
        # A large sim-time jump emits one catch-up event, not a backlog.
        reg.maybe_flush(10_000)
        assert len(events) == 2
        assert events[1]["seq"] == 1
        reg.maybe_flush(10_001)
        assert len(events) == 2

    def test_exposition_format(self):
        reg = MetricRegistry()
        reg.counter("feed.ticks").inc(3)
        reg.gauge("power.rail_w").set(7.5)
        reg.histogram("tick_to_trade_ns").record(1000)
        text = exposition(reg)
        assert "# TYPE repro_feed_ticks_total counter" in text
        assert "repro_feed_ticks_total 3" in text
        assert "repro_power_rail_w 7.5" in text
        assert "repro_tick_to_trade_ns_count 1" in text
        assert 'quantile="0.99"' in text
        assert text.endswith("\n")


def _sample_registry(p99_scale: float = 1.0) -> MetricRegistry:
    reg = MetricRegistry()
    reg.counter("queries.responded").inc(950)
    reg.counter("deadline.missed").inc(50)
    hist = reg.histogram("tick_to_trade_ns")
    rng = np.random.default_rng(3)
    base = rng.lognormal(mean=11.5, sigma=0.4, size=5000)
    # Inflate only the tail so p50 stays put and p99 moves.
    cut = np.percentile(base, 95)
    scaled = np.where(base > cut, base * p99_scale, base)
    for v in scaled:
        hist.record(int(v))
    reg.counter(IMPL_PREFIX + "memo.hits").inc(123)
    return reg


def _manifest(p99_scale: float = 1.0, responded: int | None = None) -> dict:
    reg = _sample_registry(p99_scale)
    if responded is not None:
        reg.counter("queries.responded").value = responded
    return build_manifest(
        run={"system": "lighttrader[ws+ds]", "model": "deeplob"},
        registry=reg,
        config={"n_accelerators": 3},
        seeds={"workload": 42},
        perf={"queries_per_s": 100_000.0},
    )


class TestManifest:
    def test_roundtrip(self, tmp_path):
        manifest = _manifest()
        path = tmp_path / "m.json"
        write_manifest(path, manifest)
        loaded = load_manifest(path)
        assert loaded == manifest
        assert loaded["schema"] == SCHEMA
        assert loaded["metrics"]["counters"]["queries.responded"] == 950
        # impl. metrics ARE in the manifest (debugging) ...
        assert IMPL_PREFIX + "memo.hits" in loaded["metrics"]["counters"]
        # ... and the env snapshot names every registered variable.
        assert "REPRO_METRICS" in loaded["env"]
        assert loaded["env"] == env_snapshot()

    def test_load_rejects_missing_and_corrupt(self, tmp_path):
        with pytest.raises(SimulationError):
            load_manifest(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SimulationError):
            load_manifest(bad)
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"schema": "other/v9", "metrics": {}}))
        with pytest.raises(SimulationError):
            load_manifest(wrong)


class TestDiff:
    def test_identical_manifests_diff_clean(self):
        manifest = _manifest()
        entries = diff_manifests(manifest, copy.deepcopy(manifest))
        assert entries == []

    def test_impl_metrics_never_gate(self):
        base, cand = _manifest(), _manifest()
        cand["metrics"]["counters"][IMPL_PREFIX + "memo.hits"] = 999_999
        assert diff_manifests(base, cand) == []

    def test_ten_percent_p99_regression_detected(self):
        base, cand = _manifest(), _manifest(p99_scale=1.10)
        entries = diff_manifests(base, cand)
        regressions = [e for e in entries if e["status"] == "regression"]
        assert any(e["metric"] == "hist:tick_to_trade_ns:p99" for e in regressions)

    def test_direction_inference(self):
        assert metric_direction("counter:deadline.missed") == "up_bad"
        assert metric_direction("hist:tick_to_trade_ns:p99") == "up_bad"
        assert metric_direction("counter:queries.responded") == "down_bad"
        assert metric_direction("result:response_rate") == "down_bad"
        assert metric_direction("perf:queries_per_s") == "neutral"
        assert metric_direction("counter:batch.size") == "neutral"

    def test_improvement_and_neutral_do_not_gate(self):
        base, cand = _manifest(), _manifest()
        cand["metrics"]["counters"]["deadline.missed"] = 10  # fewer misses
        cand["perf"]["queries_per_s"] = 1.0  # perf: is informational
        entries = diff_manifests(base, cand)
        statuses = {e["metric"]: e["status"] for e in entries}
        assert statuses["counter:deadline.missed"] == "improvement"
        assert statuses["perf:queries_per_s"] == "change"
        assert not any(e["status"] == "regression" for e in entries)

    def test_threshold_overrides_fnmatch_last_wins(self):
        base, cand = _manifest(), _manifest()
        cand["metrics"]["counters"]["deadline.missed"] = 52  # +4%: under default
        assert diff_manifests(base, cand) == []
        entries = diff_manifests(
            base, cand, thresholds=[("counter:deadline.*", 0.01)]
        )
        assert [e["metric"] for e in entries] == ["counter:deadline.missed"]
        # A later, more specific pattern overrides the earlier one.
        entries = diff_manifests(
            base,
            cand,
            thresholds=[("counter:*", 0.01), ("counter:deadline.missed", 0.5)],
        )
        assert entries == []

    def test_missing_metric_is_reported(self):
        base, cand = _manifest(), _manifest()
        del cand["metrics"]["counters"]["deadline.missed"]
        entries = diff_manifests(base, cand)
        missing = [e for e in entries if e.get("missing_side")]
        assert len(missing) == 1
        assert missing[0]["metric"] == "counter:deadline.missed"

    def test_render_formats(self):
        base, cand = _manifest(), _manifest(p99_scale=1.10)
        entries = diff_manifests(base, cand)
        text = render_diff(entries, "text", "base", "cand")
        assert "[REGRESSION]" in text
        md = render_diff(entries, "markdown", "base", "cand")
        assert md.startswith("|") or "|" in md
        payload = json.loads(render_diff(entries, "json", "base", "cand"))
        assert payload["baseline"] == "base"
        assert payload["regressions"] >= 1
        assert payload["entries"] == entries

    def test_flatten_skips_impl_and_keeps_sections(self):
        flat = flatten_manifest(_manifest())
        assert "counter:queries.responded" in flat
        assert "hist:tick_to_trade_ns:p99" in flat
        assert "perf:queries_per_s" in flat
        assert not any(IMPL_PREFIX in k for k in flat)


class TestCli:
    def _write(self, tmp_path, name, manifest):
        path = tmp_path / name
        write_manifest(path, manifest)
        return str(path)

    def test_clean_diff_exits_zero(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", _manifest())
        b = self._write(tmp_path, "b.json", _manifest())
        assert metrics_main(["diff", a, b]) == 0
        assert "clean" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", _manifest())
        b = self._write(tmp_path, "b.json", _manifest(p99_scale=1.10))
        assert metrics_main(["diff", a, b]) == 1
        out = capsys.readouterr().out
        assert "[REGRESSION]" in out and "tick_to_trade_ns:p99" in out

    def test_missing_manifest_exits_two(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", _manifest())
        assert metrics_main(["diff", a, str(tmp_path / "nope.json")]) == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_threshold_flag(self, tmp_path):
        a = self._write(tmp_path, "a.json", _manifest())
        b = self._write(tmp_path, "b.json", _manifest(responded=920))  # -3.2%
        assert metrics_main(["diff", a, b]) == 0
        assert (
            metrics_main(
                ["diff", a, b, "--threshold", "counter:queries.responded=0.01"]
            )
            == 1
        )

    def test_json_format(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", _manifest())
        b = self._write(tmp_path, "b.json", _manifest(p99_scale=1.10))
        assert metrics_main(["diff", a, b, "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["regressions"] >= 1

    def test_show_subcommand(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.json", _manifest())
        assert metrics_main(["show", a]) == 0
        assert "tick_to_trade_ns" in capsys.readouterr().out
