"""Tests for unit conversions and the paper-data module."""

import pytest

from repro import paperdata
from repro.units import (
    DEFAULT_TICK_SIZE,
    cycles_to_ns,
    ms_to_ns,
    ns_to_cycles,
    ns_to_ms,
    ns_to_sec,
    ns_to_us,
    price_to_ticks,
    sec_to_ns,
    ticks_to_price,
    us_to_ns,
)


class TestTimeConversions:
    def test_roundtrips(self):
        assert ns_to_us(us_to_ns(119.0)) == pytest.approx(119.0)
        assert ns_to_ms(ms_to_ns(2.5)) == pytest.approx(2.5)
        assert ns_to_sec(sec_to_ns(1.75)) == pytest.approx(1.75)

    def test_integer_output(self):
        assert isinstance(us_to_ns(0.5), int)
        assert us_to_ns(0.5) == 500

    def test_cycles(self):
        # 2 GHz: 1000 cycles = 500 ns.
        assert cycles_to_ns(1000, 2e9) == 500
        assert ns_to_cycles(500, 2e9) == pytest.approx(1000)

    def test_zero_frequency_rejected(self):
        with pytest.raises(ValueError):
            cycles_to_ns(100, 0)


class TestPriceConversions:
    def test_roundtrip(self):
        assert ticks_to_price(price_to_ticks(4500.25)) == pytest.approx(4500.25)

    def test_emini_tick(self):
        assert DEFAULT_TICK_SIZE == 0.25
        assert price_to_ticks(4500.0) == 18_000


class TestPaperData:
    def test_fig11_speedup_consistency(self):
        """Published speed-ups should be near the mean of plausible
        per-model ratios (sanity of the baseline anchoring)."""
        from repro.baselines.profiles import FPGA_RATIO, GPU_RATIO
        import statistics

        assert statistics.mean(GPU_RATIO.values()) == pytest.approx(
            paperdata.FIG11_GPU_SPEEDUP, rel=0.02
        )
        assert statistics.mean(FPGA_RATIO.values()) == pytest.approx(
            paperdata.FIG11_FPGA_SPEEDUP, rel=0.02
        )

    def test_table3_budgets_divide_evenly(self):
        for condition, total in (
            ("sufficient", paperdata.TABLE3_SUFFICIENT_TOTAL_W),
            ("limited", paperdata.TABLE3_LIMITED_TOTAL_W),
        ):
            for n, share in paperdata.TABLE3_AVAILABLE_W[condition].items():
                assert share == pytest.approx(total / n, abs=0.06)

    def test_table3_frequencies_monotone_in_budget(self):
        """More accelerators -> smaller share -> never a faster clock."""
        for condition in ("sufficient", "limited"):
            for model, row in paperdata.TABLE3_FREQ_GHZ[condition].items():
                values = [row[n] for n in paperdata.ACCELERATOR_COUNTS]
                assert values == sorted(values, reverse=True)

    def test_system_power_reproduces_efficiency_gains(self):
        """speedup x power ratio equals the published TFLOPS/W gains."""
        gpu_gain = paperdata.FIG11_GPU_SPEEDUP * (
            paperdata.SYSTEM_POWER_W["gpu"] / paperdata.SYSTEM_POWER_W["lighttrader"]
        )
        fpga_gain = paperdata.FIG11_FPGA_SPEEDUP * (
            paperdata.SYSTEM_POWER_W["fpga"] / paperdata.SYSTEM_POWER_W["lighttrader"]
        )
        assert gpu_gain == pytest.approx(paperdata.FIG11_GPU_EFFICIENCY_GAIN, rel=0.02)
        assert fpga_gain == pytest.approx(paperdata.FIG11_FPGA_EFFICIENCY_GAIN, rel=0.02)
