"""Behavioural pin for :mod:`repro.envcfg`.

The registry replaced ad-hoc ``os.environ`` parsing at four call sites;
these tests pin the exact semantics those sites relied on — parse
directions for the two bool switches, clamping for the numeric grids,
error policy for junk — plus the round-trip guarantee: every declared
variable is documented in EXPERIMENTS.md's generated table.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro import envcfg
from repro.errors import SimulationError


@pytest.fixture(autouse=True)
def clean_env(monkeypatch):
    for var in envcfg.declared():
        monkeypatch.delenv(var.name, raising=False)


# ---------------------------------------------------------------------------
# declarations
# ---------------------------------------------------------------------------


def test_registry_contents_and_defaults():
    by_name = {var.name: var for var in envcfg.declared()}
    assert set(by_name) == {
        "REPRO_TRACE_DIR",
        "REPRO_TRACE_LEVEL",
        "REPRO_FAST_LOOP",
        "REPRO_SWEEP_REFERENCE",
        "REPRO_WORKLOAD_CACHE",
        "REPRO_BENCH_JOBS",
        "REPRO_BENCH_RETRIES",
        "REPRO_BENCH_DURATION",
        "REPRO_BENCH_CRASH_FILE",
        "REPRO_BENCH_TIMEOUT_S",
        "REPRO_CAMPAIGN_DIR",
        "REPRO_CAMPAIGN_DURATION",
        "REPRO_CAMPAIGN_SEED",
        "REPRO_METRICS",
        "REPRO_METRICS_FLUSH_NS",
        "REPRO_METRICS_EXPORT",
        "REPRO_LOB_ENGINE",
        "REPRO_MARKET_FAST",
        "REPRO_TAPE_CACHE",
        "REPRO_LINT_CACHE",
    }
    assert by_name["REPRO_FAST_LOOP"].default is True
    assert by_name["REPRO_MARKET_FAST"].default is True
    assert by_name["REPRO_TAPE_CACHE"].default is None
    assert by_name["REPRO_METRICS"].default == 1
    assert by_name["REPRO_METRICS_FLUSH_NS"].default == 0
    assert by_name["REPRO_METRICS_EXPORT"].default is None
    assert by_name["REPRO_SWEEP_REFERENCE"].default is False
    assert by_name["REPRO_TRACE_LEVEL"].default == 2
    assert by_name["REPRO_BENCH_JOBS"].default == 1
    assert by_name["REPRO_BENCH_DURATION"].default == 60.0
    assert by_name["REPRO_BENCH_TIMEOUT_S"].default == 0.0
    assert by_name["REPRO_CAMPAIGN_DIR"].default is None
    assert by_name["REPRO_CAMPAIGN_DURATION"].default == 3.0
    assert by_name["REPRO_CAMPAIGN_SEED"].default == 1


def test_lookup_rejects_unregistered_names():
    assert envcfg.is_declared("REPRO_FAST_LOOP")
    assert not envcfg.is_declared("REPRO_NOPE")
    with pytest.raises(SimulationError):
        envcfg.lookup("REPRO_NOPE")
    with pytest.raises(SimulationError):
        envcfg.raw("REPRO_NOPE")


def test_declarations_validate_themselves():
    with pytest.raises(ValueError):
        envcfg.EnvVar("NOT_REPRO", "int", 1, "doc")
    with pytest.raises(ValueError):
        envcfg.EnvVar("REPRO_X", "complex", 1, "doc")
    with pytest.raises(ValueError):
        envcfg.EnvVar("REPRO_X", "int", 1, "doc", on_error="explode")
    # choice kind must declare choices, default must be a member, and
    # non-choice kinds must not declare choices.
    with pytest.raises(ValueError):
        envcfg.EnvVar("REPRO_X", "choice", "a", "doc")
    with pytest.raises(ValueError):
        envcfg.EnvVar("REPRO_X", "choice", "c", "doc", choices=("a", "b"))
    with pytest.raises(ValueError):
        envcfg.EnvVar("REPRO_X", "int", 1, "doc", choices=("a", "b"))


def test_accessors_enforce_declared_kind():
    with pytest.raises(SimulationError):
        envcfg.get_bool("REPRO_TRACE_LEVEL")
    with pytest.raises(SimulationError):
        envcfg.get_int("REPRO_FAST_LOOP")
    with pytest.raises(SimulationError):
        envcfg.get_float("REPRO_BENCH_JOBS")
    with pytest.raises(SimulationError):
        envcfg.get_path("REPRO_FAST_LOOP")
    with pytest.raises(SimulationError):
        envcfg.get_choice("REPRO_FAST_LOOP")
    with pytest.raises(SimulationError):
        envcfg.get_int("REPRO_LOB_ENGINE")


# ---------------------------------------------------------------------------
# choice: closed token set, case-insensitive, on_error policy
# ---------------------------------------------------------------------------


def test_choice_default_and_tokens(monkeypatch):
    assert envcfg.get_choice("REPRO_LOB_ENGINE") == "array"
    for token in ("reference", "REFERENCE", " Reference "):
        monkeypatch.setenv("REPRO_LOB_ENGINE", token)
        assert envcfg.get_choice("REPRO_LOB_ENGINE") == "reference"
    monkeypatch.setenv("REPRO_LOB_ENGINE", "array")
    assert envcfg.get_choice("REPRO_LOB_ENGINE") == "array"
    monkeypatch.setenv("REPRO_LOB_ENGINE", "")
    assert envcfg.get_choice("REPRO_LOB_ENGINE") == "array"


def test_choice_unknown_token_raises(monkeypatch):
    monkeypatch.setenv("REPRO_LOB_ENGINE", "btree")
    with pytest.raises(SimulationError, match="must be one of"):
        envcfg.get_choice("REPRO_LOB_ENGINE")


def test_choice_kind_text_renders_token_set():
    assert envcfg.LOB_ENGINE.kind_text == "reference|array"
    assert envcfg.BENCH_JOBS.kind_text == "int"


# ---------------------------------------------------------------------------
# bool: parse direction follows the declared default
# ---------------------------------------------------------------------------


def test_default_on_bool_turns_off_only_on_false_tokens(monkeypatch):
    assert envcfg.get_bool("REPRO_FAST_LOOP") is True
    for token in ("0", "false", "no", "FALSE", " No "):
        monkeypatch.setenv("REPRO_FAST_LOOP", token)
        assert envcfg.get_bool("REPRO_FAST_LOOP") is False
    for token in ("1", "true", "anything-else"):
        monkeypatch.setenv("REPRO_FAST_LOOP", token)
        assert envcfg.get_bool("REPRO_FAST_LOOP") is True


def test_default_off_bool_turns_on_only_on_true_tokens(monkeypatch):
    assert envcfg.get_bool("REPRO_SWEEP_REFERENCE") is False
    for token in ("1", "true", "yes", "TRUE", " Yes "):
        monkeypatch.setenv("REPRO_SWEEP_REFERENCE", token)
        assert envcfg.get_bool("REPRO_SWEEP_REFERENCE") is True
    for token in ("0", "false", "anything-else"):
        monkeypatch.setenv("REPRO_SWEEP_REFERENCE", token)
        assert envcfg.get_bool("REPRO_SWEEP_REFERENCE") is False


# ---------------------------------------------------------------------------
# int / float: defaults, clamping, error policy
# ---------------------------------------------------------------------------


def test_int_default_and_override():
    assert envcfg.get_int("REPRO_BENCH_JOBS") == 1
    assert envcfg.get_int("REPRO_BENCH_JOBS", default=4) == 4


def test_int_clamps_into_declared_range(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_JOBS", "0")
    assert envcfg.get_int("REPRO_BENCH_JOBS") == 1  # minimum=1
    monkeypatch.setenv("REPRO_BENCH_JOBS", "-3")
    assert envcfg.get_int("REPRO_BENCH_JOBS") == 1
    monkeypatch.setenv("REPRO_BENCH_JOBS", "8")
    assert envcfg.get_int("REPRO_BENCH_JOBS") == 8
    monkeypatch.setenv("REPRO_TRACE_LEVEL", "9")
    assert envcfg.get_int("REPRO_TRACE_LEVEL") == 2  # maximum=2


def test_int_error_policy_raise_vs_default(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_JOBS", "lots")
    with pytest.raises(SimulationError, match="must be an integer"):
        envcfg.get_int("REPRO_BENCH_JOBS")
    monkeypatch.setenv("REPRO_TRACE_LEVEL", "verbose")
    assert envcfg.get_int("REPRO_TRACE_LEVEL") == 2  # on_error='default'


def test_empty_value_means_default(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_JOBS", "")
    assert envcfg.get_int("REPRO_BENCH_JOBS") == 1
    monkeypatch.setenv("REPRO_BENCH_DURATION", "")
    assert envcfg.get_float("REPRO_BENCH_DURATION") == 60.0


def test_float_parse_clamp_and_raise(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_DURATION", "2.5")
    assert envcfg.get_float("REPRO_BENCH_DURATION") == 2.5
    monkeypatch.setenv("REPRO_BENCH_DURATION", "-1")
    assert envcfg.get_float("REPRO_BENCH_DURATION") == 0.0  # minimum=0
    monkeypatch.setenv("REPRO_BENCH_DURATION", "brief")
    with pytest.raises(SimulationError, match="must be a number"):
        envcfg.get_float("REPRO_BENCH_DURATION")


# ---------------------------------------------------------------------------
# path
# ---------------------------------------------------------------------------


def test_path_unset_and_empty_mean_none(monkeypatch):
    assert envcfg.get_path("REPRO_TRACE_DIR") is None
    monkeypatch.setenv("REPRO_TRACE_DIR", "")
    assert envcfg.get_path("REPRO_TRACE_DIR") is None
    monkeypatch.setenv("REPRO_TRACE_DIR", "/tmp/traces")
    assert envcfg.get_path("REPRO_TRACE_DIR") == "/tmp/traces"
    assert envcfg.raw("REPRO_TRACE_DIR") == "/tmp/traces"


# ---------------------------------------------------------------------------
# round-trip: registry <-> documentation
# ---------------------------------------------------------------------------


def test_env_table_lists_every_declared_variable():
    table = envcfg.env_table_markdown()
    for var in envcfg.declared():
        assert f"`{var.name}`" in table
        assert var.default_text in table


def test_experiments_md_documents_every_variable_inside_markers():
    experiments = Path(__file__).resolve().parent.parent / "EXPERIMENTS.md"
    text = experiments.read_text()
    block = re.search(
        r"<!-- env-table:begin -->\n(.*?)<!-- env-table:end -->",
        text,
        re.DOTALL,
    )
    assert block is not None, "EXPERIMENTS.md lost its env-table markers"
    generated = envcfg.env_table_markdown()
    assert generated in block.group(1), (
        "EXPERIMENTS.md env table is stale — regenerate with "
        "`python -m repro.lint --env-table`"
    )


def test_default_text_rendering():
    assert envcfg.TRACE_DIR.default_text == "unset"
    assert envcfg.FAST_LOOP.default_text == "on"
    assert envcfg.SWEEP_REFERENCE.default_text == "off"
    assert envcfg.BENCH_DURATION.default_text == "60"
    assert envcfg.TRACE_LEVEL.default_text == "2"
