"""Whole-program rules RL006–RL009 over synthetic module trees.

Fixture modules are assembled in-memory (or on disk for the CLI
acceptance test) with repro-shaped paths so the project model treats
them as the real packages.  Every rule gets a drift case, a clean case
and a suppression case.
"""

from __future__ import annotations

import subprocess
import sys
import textwrap
from pathlib import Path

from repro.lint import build_context
from repro.lint.facts import extract_facts
from repro.lint.project import build_model
from repro.lint.project_rules import project_rule_findings


def model_of(files: dict[str, str]):
    facts = [
        extract_facts(build_context(textwrap.dedent(source), path))
        for path, source in files.items()
    ]
    return build_model(facts)


def findings_of(files: dict[str, str], code: str | None = None):
    findings = [
        f for f in project_rule_findings(model_of(files)) if not f.suppressed
    ]
    if code is not None:
        findings = [f for f in findings if f.rule == code]
    return findings


BACKTEST_BOTH_SIDES = """
from repro.sim.events import EventKind

class Backtester:
    def _run_lighttrader(self, queue):
        for kind in queue:
            if kind is EventKind.ARRIVAL:
                pass
            elif kind is EventKind.COMPLETION:
                pass
            elif kind is EventKind.FAULT:
                pass

    def _run_lighttrader_fast(self, queue):
        for kind in queue:
            if kind is EventKind.COMPLETION:
                pass
            elif kind is EventKind.FAULT:
                pass
            elif kind is EventKind.ARRIVAL:
                pass

    def _run_fixed_system(self, queue, state):
        pass

    def _run_fixed_system_fast(self, state):
        pass
"""


# ---------------------------------------------------------------------------
# RL006 — parity-surface drift
# ---------------------------------------------------------------------------


def test_rl006_mirrored_loops_are_clean():
    assert findings_of(
        {"src/repro/sim/backtest.py": BACKTEST_BOTH_SIDES}, "RL006"
    ) == []


def test_rl006_branch_added_on_one_side_only():
    drifted = BACKTEST_BOTH_SIDES.replace(
        "            elif kind is EventKind.ARRIVAL:\n                pass\n",
        "            elif kind is EventKind.ARRIVAL:\n                pass\n"
        "            elif kind is EventKind.RETRY:\n                pass\n",
    )
    assert drifted != BACKTEST_BOTH_SIDES
    findings = findings_of({"src/repro/sim/backtest.py": drifted}, "RL006")
    assert findings, "RETRY branch on the fast side only must be drift"
    assert any("backtest-lighttrader-loop" in f.message for f in findings)
    assert any("EventKind.RETRY" in f.message for f in findings)


def test_rl006_renamed_counterpart_is_drift():
    renamed = BACKTEST_BOTH_SIDES.replace(
        "def _run_lighttrader_fast", "def _run_lighttrader_fast2"
    )
    findings = findings_of({"src/repro/sim/backtest.py": renamed}, "RL006")
    assert any(
        "counterpart" in f.message and "backtest-lighttrader-loop" in f.message
        for f in findings
    )


def test_rl006_rng_flow_divergence():
    files = {
        "src/repro/market/generator.py": """
        class MarketSimulator:
            def _generate_reference(self, ctx, rng):
                price = rng.normal(0.0, 0.05)
                size = rng.integers(1, 9)
                return price, size

            def _generate_fast(self, ctx, rng):
                size = rng.integers(1, 9)
                price = rng.normal(0.0, 0.05)
                return price, size
        """
    }
    findings = findings_of(files, "RL006")
    assert any(
        "RNG draw flows diverge" in f.message
        and "market-generator-loop" in f.message
        for f in findings
    )


def test_rl006_draw_equivalence_classes_are_clean():
    # uniform vs random draw the same double from the stream.
    files = {
        "src/repro/market/generator.py": """
        class MarketSimulator:
            def _generate_reference(self, ctx, rng):
                return rng.uniform()

            def _generate_fast(self, ctx, rng):
                return rng.random()
        """
    }
    assert findings_of(files, "RL006") == []


def test_rl006_class_pair_surface_drift():
    files = {
        "src/repro/lob/matching.py": """
        class MatchingEngine:
            def submit(self, order): ...
            def cancel(self, order_id): ...
        """,
        "src/repro/lob/array_matching.py": """
        class ArrayMatchingEngine:
            def submit(self, order): ...
            def cancel(self, order_id): ...
            def replay_ops(self, ops): ...
            def bulk_cancel(self, ids): ...
        """,
    }
    findings = findings_of(files, "RL006")
    # replay_ops is an allowed asymmetry; bulk_cancel is drift.
    assert any("bulk_cancel" in f.message for f in findings)
    assert not any("replay_ops" in f.message for f in findings)


def test_rl006_stats_keys_and_ctor_kwargs():
    files = {
        "src/repro/core/scheduler.py": """
        class ScheduleDecision:
            pass

        class WorkloadScheduler:
            def _sweep_reference(self, model, now, stats):
                stats["considered"] += 1
                stats["feasible"] += 1
                return ScheduleDecision(point=1, batch_size=2)

            def _sweep_vectorized(self, tables, now, stats):
                stats["considered"] += 1
                return ScheduleDecision(point=1)
        """
    }
    findings = findings_of(files, "RL006")
    assert any("'stats' keys diverge" in f.message for f in findings)
    assert any("keyword sets diverge" in f.message for f in findings)


def test_rl006_suppression_downgrades_finding():
    drifted = BACKTEST_BOTH_SIDES.replace(
        "    def _run_lighttrader_fast(self, queue):",
        "    # repro-lint: disable=RL006\n"
        "    def _run_lighttrader_fast(self, queue):",
    ).replace(
        "            elif kind is EventKind.ARRIVAL:\n                pass\n",
        "            elif kind is EventKind.ARRIVAL:\n                pass\n"
        "            elif kind is EventKind.RETRY:\n                pass\n",
    )
    model = model_of({"src/repro/sim/backtest.py": drifted})
    findings = [f for f in project_rule_findings(model) if f.rule == "RL006"]
    assert findings and all(f.suppressed for f in findings)


def test_rl006_cli_exit_1_names_the_pair(tmp_path: Path):
    """Acceptance: mutate one side of a parity pair on a synthetic tree;
    ``python -m repro.lint`` exits 1 naming the pair."""
    drifted = BACKTEST_BOTH_SIDES.replace(
        "            elif kind is EventKind.ARRIVAL:\n                pass\n",
        "            elif kind is EventKind.ARRIVAL:\n                pass\n"
        "            elif kind is EventKind.RETRY:\n                pass\n",
    )
    target = tmp_path / "src" / "repro" / "sim" / "backtest.py"
    target.parent.mkdir(parents=True)
    target.write_text(textwrap.dedent(drifted))

    repo_root = Path(__file__).resolve().parent.parent
    result = subprocess.run(
        [sys.executable, "-m", "repro.lint", "src"],
        cwd=tmp_path,
        capture_output=True,
        text=True,
        env={
            "PYTHONPATH": str(repo_root / "src"),
            "PATH": "/usr/bin:/bin:/usr/local/bin",
        },
    )
    assert result.returncode == 1, result.stdout + result.stderr
    assert "RL006" in result.stdout
    assert "backtest-lighttrader-loop" in result.stdout
    assert "REPRO_FAST_LOOP" in result.stdout


# ---------------------------------------------------------------------------
# RL007 — RNG-stream discipline
# ---------------------------------------------------------------------------


def test_rl007_module_level_generator():
    files = {
        "src/repro/market/noise.py": """
        import numpy as np

        _RNG = np.random.default_rng(7)
        """
    }
    findings = findings_of(files, "RL007")
    assert any("module-level RNG construction" in f.message for f in findings)


def test_rl007_unseeded_default_rng():
    files = {
        "src/repro/sim/jitter.py": """
        import numpy as np

        def jitter():
            rng = np.random.default_rng()
            return rng.random()
        """
    }
    findings = findings_of(files, "RL007")
    assert any("unseeded default_rng()" in f.message for f in findings)


def test_rl007_reseed_mid_stream():
    files = {
        "src/repro/sim/jitter.py": """
        import numpy as np

        def jitter(seed):
            rng = np.random.default_rng(seed)
            a = rng.random()
            rng = np.random.default_rng(seed + 1)
            return a + rng.random()
        """
    }
    findings = findings_of(files, "RL007")
    assert any("rebound mid-stream" in f.message for f in findings)


def test_rl007_creation_inside_loop():
    files = {
        "src/repro/sim/jitter.py": """
        import numpy as np

        def jitter(seeds):
            total = 0.0
            for seed in seeds:
                gen = np.random.default_rng(seed)
                total += gen.random()
            return total
        """
    }
    findings = findings_of(files, "RL007")
    assert any("re-created inside a loop" in f.message for f in findings)


def test_rl007_untracked_receiver():
    files = {
        "src/repro/sim/jitter.py": """
        def jitter(model):
            helper = model.helper
            return helper.random()
        """
    }
    findings = findings_of(files, "RL007")
    assert any("does not descend" in f.message for f in findings)


def test_rl007_sanctioned_idioms_are_clean():
    files = {
        "src/repro/sim/jitter.py": """
        import numpy as np

        def seeded(seed):
            rng = np.random.default_rng(seed)
            return rng.random()

        def param(rng):
            return rng.integers(0, 4)

        def attr(self):
            rng = self._rng
            return rng.normal()
        """
    }
    assert findings_of(files, "RL007") == []


def test_rl007_out_of_scope_packages_exempt():
    files = {
        "src/repro/bench/fixture.py": """
        import numpy as np

        _RNG = np.random.default_rng(7)
        """
    }
    assert findings_of(files, "RL007") == []


# ---------------------------------------------------------------------------
# RL008 — fork/pool safety
# ---------------------------------------------------------------------------


def test_rl008_parent_only_mutation_of_worker_read_global():
    files = {
        "src/repro/bench/runner.py": """
        _TABLE = {}

        def execute_run(spec):
            return _TABLE.get(spec)

        def warm(key, value):
            _TABLE[key] = value
        """
    }
    findings = findings_of(files, "RL008")
    assert any(
        "'_TABLE'" in f.message and "fork-time snapshot" in f.message
        for f in findings
    )


def test_rl008_worker_side_mutator_is_clean():
    files = {
        "src/repro/bench/runner.py": """
        _TABLE = {}

        def execute_run(spec):
            if spec not in _TABLE:
                _TABLE[spec] = build(spec)
            return _TABLE[spec]

        def build(spec):
            return spec
        """
    }
    assert findings_of(files, "RL008") == []


def test_rl008_import_time_registry_is_clean():
    # Decorator-driven registries populate at import time in both the
    # parent and the worker — not a fork hazard.
    files = {
        "src/repro/bench/runner.py": """
        from repro.campaign.scenarios import scenario

        def execute_run(spec):
            return scenario(spec)
        """,
        "src/repro/campaign/scenarios.py": """
        _SCENARIOS = {}

        def register_scenario(name):
            def wrap(fn):
                _SCENARIOS[name] = fn
                return fn
            return wrap

        def scenario(name):
            return _SCENARIOS[name]

        @register_scenario("flash_crash")
        def flash_crash():
            return 1
        """,
    }
    assert findings_of(files, "RL008") == []


def test_rl008_import_time_envcfg_read():
    files = {
        "src/repro/bench/fixture.py": """
        from repro import envcfg

        FAST = envcfg.get_bool("REPRO_FAST_LOOP")

        def use():
            return FAST
        """
    }
    findings = findings_of(files, "RL008")
    assert any(
        "REPRO_FAST_LOOP" in f.message and "import time" in f.message
        for f in findings
    )


def test_rl008_default_arg_envcfg_read():
    files = {
        "src/repro/bench/fixture.py": """
        from repro import envcfg

        def run(jobs=envcfg.get_int("REPRO_BENCH_JOBS")):
            return jobs
        """
    }
    findings = findings_of(files, "RL008")
    assert any("REPRO_BENCH_JOBS" in f.message for f in findings)


def test_rl008_function_body_envcfg_read_is_clean():
    files = {
        "src/repro/bench/fixture.py": """
        from repro import envcfg

        def run():
            return envcfg.get_int("REPRO_BENCH_JOBS")
        """
    }
    assert findings_of(files, "RL008") == []


# ---------------------------------------------------------------------------
# RL009 — interprocedural unit dataflow
# ---------------------------------------------------------------------------


def test_rl009_arg_unit_vs_param_suffix():
    files = {
        "src/repro/core/fixture.py": """
        def admit(deadline_ns):
            return deadline_ns

        def caller(cutoff_ms):
            return admit(cutoff_ms)
        """
    }
    findings = findings_of(files, "RL009")
    assert any(
        "[ms]" in f.message and "'deadline_ns' expects" in f.message
        for f in findings
    )


def test_rl009_keyword_unit_mismatch():
    files = {
        "src/repro/core/fixture.py": """
        def admit(deadline_ns=0):
            return deadline_ns

        def caller(cutoff_s):
            return admit(deadline_ns=cutoff_s)
        """
    }
    findings = findings_of(files, "RL009")
    assert any("keyword 'deadline_ns'" in f.message for f in findings)


def test_rl009_return_unit_flows_through_assignment():
    # The callee's name carries no suffix: only its *body* knows it
    # returns nanoseconds, so the verdict needs the resolved callee.
    files = {
        "src/repro/core/fixture.py": """
        def window(cfg):
            return cfg.span_ns

        def caller(cfg, cutoff_s):
            w = window(cfg)
            return w + cutoff_s
        """
    }
    findings = findings_of(files, "RL009")
    assert any(
        "window()" in f.message and "returns [ns]" in f.message
        for f in findings
    )


def test_rl009_suffixed_callee_name_resolves_locally():
    # A unit-suffixed callee name decides the mix without the project
    # model — still an RL009 finding, extracted per file.
    files = {
        "src/repro/core/fixture.py": """
        def caller(cfg, cutoff_s):
            w = window_ns(cfg)
            return w + cutoff_s
        """
    }
    findings = findings_of(files, "RL009")
    assert any("w [ns]" in f.message and "cutoff_s [s]" in f.message for f in findings)


def test_rl009_name_suffix_vs_returned_unit():
    files = {
        "src/repro/core/fixture.py": """
        def window_ns(cfg):
            return cfg.span_ms
        """
    }
    findings = findings_of(files, "RL009")
    assert any(
        "suffixed [ns] but returns [ms]" in f.message for f in findings
    )


def test_rl009_consistent_units_are_clean():
    files = {
        "src/repro/core/fixture.py": """
        def admit(deadline_ns):
            return deadline_ns

        def window_ns(cfg):
            return cfg.span_ns

        def caller(cfg, cutoff_ns):
            w = window_ns(cfg)
            admit(cutoff_ns)
            return w + cutoff_ns
        """
    }
    assert findings_of(files, "RL009") == []


def test_rl009_lexical_mix_stays_rl002():
    # Both operands carry lexical suffixes: that is RL002's finding,
    # not a duplicate RL009 one.
    files = {
        "src/repro/core/fixture.py": """
        def caller(a_ns, b_s):
            return a_ns + b_s
        """
    }
    assert findings_of(files, "RL009") == []


# ---------------------------------------------------------------------------
# model plumbing
# ---------------------------------------------------------------------------


def test_model_skips_modules_outside_repro():
    model = model_of({"tests/fixture.py": "def f():\n    return 1\n"})
    assert model.modules == {}


def test_real_repo_is_project_clean():
    repo_root = Path(__file__).resolve().parent.parent
    src = repo_root / "src"
    facts = [
        extract_facts(
            build_context(p.read_text(), p.relative_to(repo_root).as_posix())
        )
        for p in sorted(src.rglob("*.py"))
    ]
    model = build_model(facts)
    findings = [f for f in project_rule_findings(model) if not f.suppressed]
    assert findings == [], [f.render() for f in findings]
