"""Telemetry must be free when disabled.

The hot paths (event loop, scheduler, power manager) are permanently
instrumented; the contract that makes this acceptable is that a run
without telemetry touches only shared no-op objects.  These are
regression tests on that contract — allocation counts, not wall-clock,
so they cannot flake with machine load.
"""

import tracemalloc

from repro.baselines import lighttrader_profile
from repro.sim.backtest import Backtester, SimConfig
from repro.sim.workload_cache import cached_synthetic_workload
from repro.telemetry.registry import NULL_REGISTRY, Registry


def test_disabled_registry_shares_one_null_instrument():
    registry = Registry(enabled=False)
    null = registry.counter("a")
    assert registry.counter("b") is null
    assert registry.gauge("c") is null
    assert registry.histogram("d") is null
    assert NULL_REGISTRY.counter("anything") is null
    # And it stays allocation-free: no instrument dict growth either.
    assert not registry._counters and not registry._gauges


def test_null_instrument_api_is_inert():
    null = NULL_REGISTRY.counter("x")
    null.inc()
    null.inc(100)
    null.set(3.0)
    null.record(5.0)
    assert null.value == 0
    assert null.to_dict() == {}


def test_untraced_backtest_allocates_nothing_in_telemetry():
    profile = lighttrader_profile()
    workload = cached_synthetic_workload(2.0, seed=4, name="overhead")
    config = SimConfig(
        model="deeplob",
        n_accelerators=2,
        workload_scheduling=True,
        dvfs_scheduling=True,
    )
    # Warm every lazy cache (anchor calibration, sweep grids) first, so
    # the traced window sees only steady-state simulation work.
    Backtester(workload, profile, config).run()

    telemetry_filter = tracemalloc.Filter(True, "*/repro/telemetry/*")
    tracemalloc.start(10)
    try:
        Backtester(workload, profile, config).run()
        snapshot = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    telemetry_stats = snapshot.filter_traces([telemetry_filter]).statistics("filename")
    allocated = sum(stat.size for stat in telemetry_stats)
    # The telemetry package must not allocate at all on the no-telemetry
    # path (shared null instruments, no spans, no decision log).
    assert allocated == 0, (
        f"telemetry allocated {allocated} bytes without a consumer: "
        f"{[str(s) for s in telemetry_stats]}"
    )
