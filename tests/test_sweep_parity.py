"""Vectorized sweep ⇔ reference Algorithm-1 loop: decision-for-decision parity.

The vectorized sweep is only allowed to change *how fast* Algorithm 1
runs, never *what* it decides.  These property-style tests drive both
implementations through randomized profiles, deadline mixes, power
budgets and frequency floors and require

- identical :class:`ScheduleDecision` objects (point, batch, timings,
  and the exact score bits), including the None case, and
- identical decision-log streams (considered / feasible /
  rejected_deadline / rejected_power counts, floor relaxation).
"""

import numpy as np
import pytest

from repro import envcfg
from repro.accelerator.power import DVFSTable
from repro.baselines.modelcosts import ModelCost
from repro.baselines.profiles import lighttrader_profile
from repro.core.scheduler import SWEEP_REFERENCE_ENV, WorkloadScheduler
from repro.telemetry.decisions import DecisionLog

NOW = 5_000_000  # ns


@pytest.fixture(scope="module")
def profile():
    profile = lighttrader_profile()
    # Synthetic zoo models stretch the grids beyond the calibrated trio.
    rng = np.random.default_rng(11)
    for i in range(3):
        profile.register(
            ModelCost(
                name=f"synthetic_{i}",
                cycles_batch1=float(rng.uniform(5e4, 5e6)),
                batch_utilisation=float(rng.uniform(0.2, 0.95)),
                activity=float(rng.uniform(0.5, 3.0)),
                total_ops=1e8,
                weight_bytes=1 << 20,
            )
        )
    return profile


def _random_case(rng):
    depth = int(rng.integers(1, 17))
    slack = rng.lognormal(mean=np.log(1.5e6), sigma=1.2, size=depth)
    deadlines = [NOW - 2_000_000 + int(s) for s in slack]  # some already missed
    budget = float(rng.uniform(2.0, 70.0))
    floor = float(rng.choice([0.0, 0.8e9, 1.4e9, 2.0e9]))
    return deadlines, budget, floor


@pytest.mark.parametrize("metric", ["ppw", "latency", "throughput"])
@pytest.mark.parametrize("max_batch", [4, 16])
def test_randomized_sweep_parity(profile, metric, max_batch):
    table = DVFSTable(cap_hz=2.2e9)
    models = ["deeplob", "translob", "vanilla_cnn", "synthetic_0", "synthetic_1"]
    vec_log, ref_log = DecisionLog(), DecisionLog()
    vec = WorkloadScheduler(
        profile, table, max_batch=max_batch, metric=metric, log=vec_log, vectorized=True
    )
    ref = WorkloadScheduler(
        profile, table, max_batch=max_batch, metric=metric, log=ref_log, vectorized=False
    )
    seed = {"ppw": 1, "latency": 2, "throughput": 3}[metric] * 100 + max_batch
    rng = np.random.default_rng(seed)
    decided = 0
    for trial in range(150):
        model = models[int(rng.integers(0, len(models)))]
        deadlines, budget, floor = _random_case(rng)
        got = vec.decide(model, NOW, deadlines, budget, floor)
        want = ref.decide(model, NOW, deadlines, budget, floor)
        assert got == want, (
            f"trial {trial}: vectorized {got} != reference {want} "
            f"(model={model}, budget={budget}, floor={floor}, deadlines={deadlines})"
        )
        decided += want is not None
    # The mix must exercise both outcomes to mean anything.
    assert 0 < decided < 150 * 0.999
    assert vec_log.events == ref_log.events


def test_parity_without_decision_log(profile):
    """The uninstrumented fast path picks the same candidates."""
    table = DVFSTable(cap_hz=2.0e9)
    vec = WorkloadScheduler(profile, table, vectorized=True)
    ref = WorkloadScheduler(profile, table, vectorized=False)
    rng = np.random.default_rng(42)
    for _ in range(100):
        deadlines, budget, floor = _random_case(rng)
        assert vec.decide("deeplob", NOW, deadlines, budget, floor) == ref.decide(
            "deeplob", NOW, deadlines, budget, floor
        )


def test_scores_are_bit_identical(profile):
    """Not just the same argmax: the reported score has the same bits."""
    table = DVFSTable(cap_hz=2.2e9)
    vec = WorkloadScheduler(profile, table, vectorized=True)
    ref = WorkloadScheduler(profile, table, vectorized=False)
    rng = np.random.default_rng(7)
    compared = 0
    for _ in range(120):
        deadlines, budget, floor = _random_case(rng)
        got = vec.decide("translob", NOW, deadlines, budget, floor)
        want = ref.decide("translob", NOW, deadlines, budget, floor)
        if want is None:
            assert got is None
            continue
        assert got.ppw.hex() == want.ppw.hex()
        assert got.power_w.hex() == want.power_w.hex()
        compared += 1
    assert compared > 10


def test_reference_env_flag(profile, monkeypatch):
    table = DVFSTable(cap_hz=2.0e9)
    monkeypatch.setenv(SWEEP_REFERENCE_ENV, "1")
    assert WorkloadScheduler(profile, table).vectorized is False
    monkeypatch.delenv(SWEEP_REFERENCE_ENV)
    assert WorkloadScheduler(profile, table).vectorized is True
    assert envcfg.raw(SWEEP_REFERENCE_ENV) is None


def test_vectorized_falls_back_without_grid_support(profile):
    """Profiles without sweep_grid() transparently use the reference loop."""

    class Oracle:
        def t_total_ns(self, model, point, batch_size):
            return profile.t_total_ns(model, point, batch_size)

        def power_w(self, model, point, batch_size):
            return profile.power_w(model, point, batch_size)

    table = DVFSTable(cap_hz=2.0e9)
    bare = WorkloadScheduler(Oracle(), table, vectorized=True)
    full = WorkloadScheduler(profile, table, vectorized=True)
    decision = bare.decide("deeplob", NOW, [NOW + 3_000_000], 55.0)
    assert decision == full.decide("deeplob", NOW, [NOW + 3_000_000], 55.0)
    assert decision is not None


def test_thermal_cap_parity(profile):
    """cap_freq_hz (thermal throttling) prunes both paths identically."""
    table = DVFSTable(cap_hz=2.2e9)
    vec_log, ref_log = DecisionLog(), DecisionLog()
    vec = WorkloadScheduler(profile, table, log=vec_log, vectorized=True)
    ref = WorkloadScheduler(profile, table, log=ref_log, vectorized=False)
    rng = np.random.default_rng(77)
    committed_below_cap = 0
    for trial in range(120):
        deadlines, budget, floor = _random_case(rng)
        cap = float(rng.choice([0.6e9, 1.0e9, 1.4e9, 2.0e9]))
        got = vec.decide("deeplob", NOW, deadlines, budget, floor, cap_freq_hz=cap)
        want = ref.decide("deeplob", NOW, deadlines, budget, floor, cap_freq_hz=cap)
        assert got == want, f"trial {trial}: cap={cap}: {got} != {want}"
        if got is not None:
            assert got.point.freq_hz <= cap + 1e-3
            committed_below_cap += 1
    assert committed_below_cap > 10
    assert vec_log.events == ref_log.events


def test_cap_below_every_point_yields_none(profile):
    table = DVFSTable(cap_hz=2.2e9)
    for vectorized in (True, False):
        scheduler = WorkloadScheduler(profile, table, vectorized=vectorized)
        decision = scheduler.decide(
            "deeplob", NOW, [NOW + 5_000_000], 55.0, cap_freq_hz=1.0
        )
        assert decision is None
