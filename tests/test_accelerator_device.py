"""Tests for accelerator devices, clusters, C2C links and the interpreter."""

import numpy as np
import pytest

from repro.accelerator import (
    Accelerator,
    AcceleratorCluster,
    C2CLinkConfig,
    CGRAInterpreter,
    DVFSTable,
    DVFS_SWITCH_NS,
    InterlakenLinkConfig,
    PowerModel,
    WatermarkFifo,
    bandwidth_ratio,
    simulate_flow_control,
)
from repro import paperdata
from repro.errors import AcceleratorError
from repro.units import us_to_ns


@pytest.fixture
def table():
    return DVFSTable(cap_hz=2.0e9)


@pytest.fixture
def device(table):
    return Accelerator(0, table, PowerModel(), initial_point=table.at_ghz(2.0))


class TestAccelerator:
    def test_idle_initially(self, device):
        assert device.is_idle(0)

    def test_issue_makes_busy_until_completion(self, device):
        record = device.issue(100, us_to_ns(50), batch_size=1, activity=1.5)
        assert not device.is_idle(record.completion_time - 1)
        assert device.is_idle(record.completion_time)

    def test_finish_before_completion_rejected(self, device):
        device.issue(0, 1000, 1, 1.5)
        with pytest.raises(AcceleratorError):
            device.finish(500)

    def test_finish_counts(self, device):
        device.issue(0, 1000, 1, 1.5)
        device.finish(1000)
        assert device.completed == 1
        assert device.current is None

    def test_issue_while_busy_rejected(self, device):
        device.issue(0, 1000, 1, 1.5)
        with pytest.raises(AcceleratorError):
            device.issue(500, 1000, 1, 1.5)

    def test_dvfs_switch_delay(self, device, table):
        ready = device.set_point(table.at_ghz(1.0), now=0)
        assert ready == DVFS_SWITCH_NS
        with pytest.raises(AcceleratorError):
            device.issue(0, 1000, 1, 1.5)  # not ready until the switch settles

    def test_same_point_is_free(self, device, table):
        assert device.set_point(table.at_ghz(2.0), now=0) == 0

    def test_dvfs_change_while_busy_rejected(self, device, table):
        device.issue(0, 1000, 1, 1.5)
        with pytest.raises(AcceleratorError):
            device.set_point(table.at_ghz(1.0), now=500)

    def test_power_during_and_after(self, device):
        record = device.issue(0, 1000, 2, 1.5)
        assert device.power_now(500) == pytest.approx(record.power_w)
        assert device.power_now(2000) < record.power_w  # idle leakage


class TestCluster:
    @pytest.fixture
    def cluster(self, table):
        return AcceleratorCluster(
            n_accelerators=4, table=table, power_model=PowerModel(), budget_w=20.0
        )

    def test_budget_split(self, cluster):
        assert cluster.per_accel_budget_w == pytest.approx(5.0)

    def test_idle_and_busy_partition(self, cluster):
        cluster.devices[0].issue(0, 1000, 1, 1.5)
        assert len(cluster.idle_devices(500)) == 3
        assert len(cluster.busy_devices(500)) == 1

    def test_next_completion(self, cluster):
        cluster.devices[0].issue(0, 1000, 1, 1.5)
        cluster.devices[1].issue(0, 3000, 1, 1.5)
        assert cluster.next_completion(0) == 1000
        assert cluster.next_completion(5000) is None

    def test_total_power_sums_devices(self, cluster):
        before = cluster.total_power(0)
        cluster.devices[0].issue(0, 1000, 1, 1.5)
        assert cluster.total_power(500) > before

    def test_headroom(self, cluster):
        assert cluster.headroom(0) <= 20.0
        assert cluster.headroom(0) > 0

    def test_invalid_cluster_rejected(self, table):
        with pytest.raises(AcceleratorError):
            AcceleratorCluster(0, table, PowerModel(), budget_w=10.0)
        with pytest.raises(AcceleratorError):
            AcceleratorCluster(2, table, PowerModel(), budget_w=0.0)


class TestC2CLink:
    def test_bandwidth_ratio_near_paper(self):
        ratio = bandwidth_ratio()
        assert ratio == pytest.approx(
            paperdata.FIG9_C2C_VS_INTERLAKEN_BANDWIDTH, rel=0.05
        )

    def test_c2c_efficiency_higher_than_interlaken(self):
        assert C2CLinkConfig().protocol_efficiency > InterlakenLinkConfig().protocol_efficiency

    def test_transfer_time_linear(self):
        link = C2CLinkConfig()
        assert link.transfer_ns(2_000_000) == pytest.approx(
            2 * link.transfer_ns(1_000_000), rel=0.01
        )

    def test_negative_transfer_rejected(self):
        with pytest.raises(AcceleratorError):
            C2CLinkConfig().transfer_ns(-1)
        with pytest.raises(AcceleratorError):
            InterlakenLinkConfig().transfer_ns(-1)


class TestWatermarkFlowControl:
    def test_no_overflow_with_adequate_margin(self):
        fifo = WatermarkFifo(depth=32, high_watermark=24, low_watermark=8, delay_cycles=4)
        stats = simulate_flow_control(500, fifo, consumer_period=2)
        assert stats.overflows == 0
        assert stats.words_sent == 500

    def test_fast_consumer_no_stalls(self):
        fifo = WatermarkFifo(depth=32, high_watermark=24, low_watermark=8)
        stats = simulate_flow_control(200, fifo, consumer_period=1)
        assert stats.stall_cycles == 0

    def test_slow_consumer_throughput_matches_consumer(self):
        fifo = WatermarkFifo(depth=32, high_watermark=24, low_watermark=8)
        stats = simulate_flow_control(300, fifo, consumer_period=3)
        assert stats.throughput == pytest.approx(1 / 3, rel=0.1)
        assert stats.stall_cycles > 0

    def test_tiny_margin_overflows(self):
        """High watermark at the very top + signal delay -> overflow risk."""
        fifo = WatermarkFifo(depth=8, high_watermark=8, low_watermark=1, delay_cycles=6)
        stats = simulate_flow_control(200, fifo, consumer_period=4)
        assert stats.overflows > 0

    def test_invalid_watermarks_rejected(self):
        with pytest.raises(AcceleratorError):
            WatermarkFifo(depth=8, high_watermark=9, low_watermark=1)
        with pytest.raises(AcceleratorError):
            WatermarkFifo(depth=8, high_watermark=4, low_watermark=6)


class TestInterpreter:
    def test_matmul_matches_numpy(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((9, 33)).astype(np.float32)
        b = rng.standard_normal((33, 21)).astype(np.float32)
        interp = CGRAInterpreter()
        np.testing.assert_allclose(interp.matmul(a, b), a @ b, rtol=1e-4, atol=1e-5)
        assert interp.stats.mac_instructions > 0

    def test_matmul_shape_mismatch_rejected(self):
        interp = CGRAInterpreter()
        with pytest.raises(AcceleratorError):
            interp.matmul(np.zeros((2, 3)), np.zeros((4, 5)))

    def test_elementwise_matches_numpy(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0.1, 2.0, size=(7, 11)).astype(np.float32)
        interp = CGRAInterpreter()
        np.testing.assert_allclose(interp.elementwise("exp", x), np.exp(x), rtol=1e-5)
        np.testing.assert_allclose(interp.elementwise("tanh", x), np.tanh(x), rtol=1e-5)

    def test_unknown_function_rejected(self):
        with pytest.raises(AcceleratorError):
            CGRAInterpreter().elementwise("sinh", np.ones(3))

    def test_conv_via_lowering_matches_layer(self):
        """FMT lowering + grid matmul equals the nn Conv2D (valid, no bias)."""
        from repro.nn.layers import Conv2D

        rng = np.random.default_rng(2)
        layer = Conv2D(3, (3, 3), padding="valid")
        layer.build((2, 8, 7), np.random.default_rng(5))
        layer.params["bias"][:] = 0.0
        x = rng.standard_normal((1, 2, 8, 7)).astype(np.float32)
        expected = layer.forward(x)[0]
        got = CGRAInterpreter().conv2d_via_lowering(x[0], layer.params["weight"])
        np.testing.assert_allclose(got, expected, rtol=1e-4, atol=1e-5)


class TestFmt:
    def test_lowering_shape(self):
        from repro.accelerator import lower_conv2d

        x = np.arange(2 * 5 * 4, dtype=np.float32).reshape(2, 5, 4)
        result = lower_conv2d(x, (2, 2))
        assert result.data.shape == (2 * 2 * 2, 4 * 3)
        assert result.cycles > 0

    def test_transpose_roundtrip(self):
        from repro.accelerator import transpose2d

        x = np.arange(12, dtype=np.float32).reshape(3, 4)
        np.testing.assert_array_equal(transpose2d(transpose2d(x).data).data, x)

    def test_shuffle_validates_permutation(self):
        from repro.accelerator import shuffle_channels

        x = np.zeros((4, 2, 2), dtype=np.float32)
        with pytest.raises(AcceleratorError):
            shuffle_channels(x, np.array([0, 1, 1, 2]))

    def test_flatten_orders_differ(self):
        from repro.accelerator import flatten_hw

        x = np.arange(2 * 3 * 4, dtype=np.float32).reshape(2, 3, 4)
        chw = flatten_hw(x, "chw").data
        hwc = flatten_hw(x, "hwc").data
        assert not np.array_equal(chw, hwc)
        assert sorted(chw.tolist()) == sorted(hwc.tolist())
