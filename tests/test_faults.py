"""Fault injection: plans, injector mechanics, graceful degradation."""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.profiles import gpu_profile, lighttrader_profile
from repro.errors import SimulationError
from repro.faults import (
    DEVICE_FAILURE,
    DEVICE_RECOVERY,
    DMA_STALL,
    PACKET_DROP,
    PACKET_DUP,
    PACKET_REORDER,
    QUERY_CORRUPTION,
    THERMAL_THROTTLE,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    seeded_plan,
)
from repro.sim.backtest import Backtester, SimConfig
from repro.sim.workload import Regime, TrafficSpec, synthetic_workload
from repro.telemetry import Telemetry
from repro.units import GHZ, sec_to_ns

DURATION = 2.0


def _workload(duration_s=DURATION, seed=1):
    return synthetic_workload(duration_s=duration_s, seed=seed)


def _config(**kwargs):
    defaults = dict(
        model="deeplob",
        n_accelerators=16,
        workload_scheduling=True,
        dvfs_scheduling=True,
    )
    defaults.update(kwargs)
    return SimConfig(**defaults)


def _hard_failure_plan(n_failures=4, t_s=0.5):
    """Permanently fail ``n_failures`` devices shortly into the run."""
    return FaultPlan(
        events=tuple(
            FaultEvent(
                t_ns=sec_to_ns(t_s) + i * 1_000, kind=DEVICE_FAILURE, accel_id=i
            )
            for i in range(n_failures)
        )
    )


class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError):
            FaultEvent(t_ns=0, kind="cosmic_ray")

    def test_cluster_fault_needs_accel(self):
        with pytest.raises(SimulationError):
            FaultEvent(t_ns=0, kind=DEVICE_FAILURE)

    def test_feed_fault_needs_tick(self):
        with pytest.raises(SimulationError):
            FaultEvent(t_ns=0, kind=PACKET_DROP)

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            FaultEvent(t_ns=-1, kind=DMA_STALL)

    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.empty
        assert plan.cluster_events() == ()
        assert plan.feed_events() == ()
        assert plan.counts() == {}

    def test_event_partition(self):
        plan = FaultPlan(
            events=(
                FaultEvent(t_ns=5, kind=DMA_STALL, duration_ns=10),
                FaultEvent(t_ns=1, kind=DEVICE_FAILURE, accel_id=0),
                FaultEvent(t_ns=0, kind=PACKET_DROP, tick_index=3),
            )
        )
        cluster = plan.cluster_events()
        assert [e.kind for e in cluster] == [DEVICE_FAILURE, DMA_STALL]  # sorted
        assert [e.kind for e in plan.feed_events()] == [PACKET_DROP]

    def test_seeded_plan_deterministic(self):
        kwargs = dict(
            duration_s=5.0,
            n_accelerators=8,
            n_ticks=1000,
            device_failure_rate_hz=1.0,
            corruption_rate_hz=1.0,
            throttle_rate_hz=1.0,
            stall_rate_hz=1.0,
            packet_loss_prob=0.01,
            duplicate_prob=0.01,
            reorder_prob=0.01,
        )
        assert seeded_plan(seed=5, **kwargs) == seeded_plan(seed=5, **kwargs)
        assert seeded_plan(seed=5, **kwargs) != seeded_plan(seed=6, **kwargs)

    def test_seeded_plan_zero_rates_empty(self):
        assert seeded_plan(duration_s=5.0, n_accelerators=8, n_ticks=100).empty

    def test_seeded_plan_targets_valid_devices(self):
        plan = seeded_plan(
            duration_s=5.0, n_accelerators=4, seed=2, device_failure_rate_hz=3.0
        )
        assert all(0 <= e.accel_id < 4 for e in plan.cluster_events())


class TestFaultInjector:
    def test_rejects_out_of_range_accel(self):
        plan = FaultPlan(
            events=(FaultEvent(t_ns=0, kind=DEVICE_FAILURE, accel_id=7),)
        )
        with pytest.raises(ValueError):
            FaultInjector(plan, n_accelerators=4)

    def test_arrival_times(self):
        plan = FaultPlan(
            events=(
                FaultEvent(t_ns=0, kind=PACKET_DROP, tick_index=0),
                FaultEvent(t_ns=0, kind=PACKET_REORDER, tick_index=1, delay_ns=50),
                FaultEvent(t_ns=0, kind=PACKET_DUP, tick_index=2, delay_ns=30),
            )
        )
        injector = FaultInjector(plan, n_accelerators=1)
        assert injector.arrival_times(0, 100) == ()
        assert injector.arrival_times(1, 100) == (150,)
        assert injector.arrival_times(2, 100) == (100, 130)
        assert injector.arrival_times(3, 100) == (100,)

    def test_duplicate_suppressed_on_second_arrival(self):
        plan = FaultPlan(
            events=(FaultEvent(t_ns=0, kind=PACKET_DUP, tick_index=0, delay_ns=10),)
        )
        injector = FaultInjector(plan, n_accelerators=1)
        assert injector.on_arrival(0, 100) == "admit"
        assert injector.on_arrival(0, 110) == "duplicate"
        assert injector.feed_duplicates_suppressed == 1

    def test_stall_window(self):
        injector = FaultInjector(FaultPlan(), n_accelerators=1)
        injector.begin_stall(100, 50)
        assert injector.on_arrival(0, 120) == "stalled"
        assert injector.on_arrival(0, 150) == "admit"  # boundary: window closed


class TestGracefulDegradation:
    def test_empty_plan_bit_transparent(self):
        workload = _workload()
        profile = lighttrader_profile()
        config = _config()
        plain = Backtester(workload, profile, config).run()
        empty = Backtester(workload, profile, config, faults=FaultPlan()).run()
        assert dataclasses.asdict(plain) == dataclasses.asdict(empty)

    def test_four_of_sixteen_hard_failures(self):
        """The headline acceptance scenario: 4 of 16 devices fail for good
        mid-run; the back-test completes, power redistributes across the
        12 survivors, and the decision log records it all."""
        workload = _workload()
        profile = lighttrader_profile()
        telemetry = Telemetry()
        backtester = Backtester(
            workload, profile, _config(), telemetry=telemetry,
            faults=_hard_failure_plan(4),
        )
        result = backtester.run()  # must not raise
        assert result.n_queries > 0
        events = telemetry.decisions.events
        failures = [
            e for e in events
            if e["type"] == "fault" and e["kind"] == DEVICE_FAILURE
        ]
        assert len(failures) == 4
        assert failures[-1]["survivors"] == 12
        # Algorithm 2 keeps redistributing after the failures — over the
        # surviving devices only.
        fail_time = max(e["t_ns"] for e in failures)
        assert any(
            e["type"] == "redistribute" and e["t_ns"] > fail_time for e in events
        )
        assert telemetry.registry.counter(f"faults.{DEVICE_FAILURE}").value == 4

    def test_failed_devices_quarantined_and_survivors_absorb_load(self):
        workload = _workload()
        profile = lighttrader_profile()
        config = _config(n_accelerators=4)
        plan = _hard_failure_plan(2, t_s=0.2)
        backtester = Backtester(workload, profile, config, faults=plan)
        degraded = backtester.run()
        healthy = Backtester(workload, profile, config).run()
        # Half the cluster is gone for 90% of the run: the run completes
        # and still answers queries, at no better a rate than the
        # healthy cluster.
        assert degraded.responded > 0
        assert degraded.response_rate <= healthy.response_rate + 1e-12

    def test_recovery_readmits_device(self):
        workload = _workload()
        profile = lighttrader_profile()
        telemetry = Telemetry()
        plan = FaultPlan(
            events=(
                FaultEvent(
                    t_ns=sec_to_ns(0.5),
                    kind=DEVICE_FAILURE,
                    accel_id=0,
                    duration_ns=sec_to_ns(0.5),
                ),
            )
        )
        Backtester(
            workload, profile, _config(n_accelerators=2),
            telemetry=telemetry, faults=plan,
        ).run()
        events = telemetry.decisions.events
        recoveries = [
            e for e in events
            if e["type"] == "fault" and e["kind"] == DEVICE_RECOVERY
        ]
        assert len(recoveries) == 1
        assert recoveries[0]["survivors"] == 2
        assert recoveries[0]["t_ns"] == sec_to_ns(1.0)

    def test_thermal_throttle_caps_committed_points(self):
        """While throttled, every DVFS transition lands at or below the cap."""
        workload = _workload()
        profile = lighttrader_profile()
        telemetry = Telemetry()
        cap_hz = 1.0 * GHZ
        plan = FaultPlan(
            events=(
                FaultEvent(
                    t_ns=sec_to_ns(0.2),
                    kind=THERMAL_THROTTLE,
                    accel_id=0,
                    cap_hz=cap_hz,
                    duration_ns=sec_to_ns(1.5),
                ),
            )
        )
        Backtester(
            workload, profile, _config(n_accelerators=1),
            telemetry=telemetry, faults=plan,
        ).run()
        start, end = sec_to_ns(0.2), sec_to_ns(1.7)
        throttled = [
            e for e in telemetry.decisions.events
            if e["type"] == "dvfs_transition" and start <= e["t_ns"] < end
        ]
        assert throttled, "expected transitions inside the throttle window"
        assert all(e["new"]["freq_ghz"] <= cap_hz / 1e9 + 1e-9 for e in throttled)

    def test_corruption_reissues_or_drops(self):
        workload = _workload()
        profile = lighttrader_profile()
        telemetry = Telemetry()
        plan = FaultPlan(
            events=tuple(
                FaultEvent(t_ns=sec_to_ns(0.1 * k), kind=QUERY_CORRUPTION, accel_id=0)
                for k in range(1, 15)
            )
        )
        result = Backtester(
            workload, profile, _config(n_accelerators=1),
            telemetry=telemetry, faults=plan,
        ).run()
        assert result.n_queries > 0
        corrupt = [
            e for e in telemetry.decisions.events
            if e["type"] == "fault" and e["kind"] == "corrupt_result"
        ]
        assert corrupt  # at least one batch was in flight when flagged
        assert all(
            "requeued" in e and "dropped" in e for e in corrupt
        )

    def test_dma_stall_defers_admission(self):
        workload = _workload()
        profile = lighttrader_profile()
        plan = FaultPlan(
            events=(
                FaultEvent(
                    t_ns=sec_to_ns(0.5), kind=DMA_STALL, duration_ns=sec_to_ns(0.4)
                ),
            )
        )
        stalled = Backtester(
            workload, profile, _config(n_accelerators=2), faults=plan
        ).run()
        clean = Backtester(workload, profile, _config(n_accelerators=2)).run()
        # A 400 ms admission freeze must cost responses.
        assert stalled.responded < clean.responded

    def test_lighttrader_degrades_less_than_fixed_baseline(self):
        """Acceptance: under the same hard-failure FaultPlan, the ws+ds
        scheduler's miss-rate increase stays strictly below the fixed-DVFS
        baseline's.  Needs traffic heavy enough that losing half the
        cluster actually hurts — the default calm-dominated spec is
        absorbed by any survivor count."""
        spec = TrafficSpec(
            calm=Regime("calm", rate_hz=2_000.0, mean_dwell_s=0.2),
            episodes=(
                Regime("active", rate_hz=9_000.0, mean_dwell_s=0.06),
                Regime("burst", rate_hz=40_000.0, mean_dwell_s=0.012),
            ),
            episode_weights=(0.6, 0.4),
        )
        workload = synthetic_workload(duration_s=DURATION, spec=spec, seed=1)
        profile = lighttrader_profile()
        plan = _hard_failure_plan(2, t_s=0.4)

        def miss_delta(**flags):
            config = _config(n_accelerators=4, **flags)
            clean = Backtester(workload, profile, config).run()
            faulty = Backtester(workload, profile, config, faults=plan).run()
            return faulty.miss_rate - clean.miss_rate

        smart = miss_delta(workload_scheduling=True, dvfs_scheduling=True)
        fixed = miss_delta(workload_scheduling=False, dvfs_scheduling=False)
        assert 0.0 < smart < fixed

    def test_fixed_profile_system_survives_faults(self):
        workload = _workload()
        plan = seeded_plan(
            DURATION,
            4,
            n_ticks=len(workload),
            seed=9,
            device_failure_rate_hz=1.0,
            failure_downtime_s=0.3,
            corruption_rate_hz=1.0,
            stall_rate_hz=1.0,
            packet_loss_prob=0.02,
            duplicate_prob=0.01,
            reorder_prob=0.01,
        )
        config = SimConfig(model="deeplob", n_accelerators=4)
        result = Backtester(
            workload, gpu_profile(), config, faults=plan
        ).run()
        repeat = Backtester(
            workload, gpu_profile(), config, faults=plan
        ).run()
        assert result.n_queries > 0
        assert dataclasses.asdict(result) == dataclasses.asdict(repeat)

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=5, deadline=None)
    def test_identical_seed_and_plan_identical_results(self, seed):
        """Property: (workload seed, fault plan) fully determine the run."""
        workload = synthetic_workload(duration_s=1.0, seed=seed)
        plan = seeded_plan(
            1.0,
            4,
            n_ticks=len(workload),
            seed=seed,
            device_failure_rate_hz=2.0,
            failure_downtime_s=0.2,
            corruption_rate_hz=2.0,
            throttle_rate_hz=1.0,
            throttle_duration_s=0.2,
            stall_rate_hz=1.0,
            packet_loss_prob=0.02,
            duplicate_prob=0.01,
            reorder_prob=0.01,
        )
        profile = lighttrader_profile()
        config = _config(n_accelerators=4)
        first = Backtester(workload, profile, config, faults=plan).run()
        second = Backtester(workload, profile, config, faults=plan).run()
        assert dataclasses.asdict(first) == dataclasses.asdict(second)
