"""Tests for the PPW metric, Algorithm 1 and Algorithm 2."""

import pytest

from repro.accelerator import (
    AcceleratorCluster,
    DVFSTable,
    DVFS_SWITCH_NS,
    PowerModel,
)
from repro.baselines import lighttrader_profile
from repro.core import DVFSScheduler, WorkloadScheduler, ppw, ppw_increase
from repro.errors import SchedulingError
from repro.units import us_to_ns


@pytest.fixture(scope="module")
def profile():
    return lighttrader_profile()


@pytest.fixture
def table():
    return DVFSTable()


class TestPPW:
    def test_definition(self):
        # 2 queries, 1 ms, 5 W -> 2 / (1e-3 * 5) = 400
        assert ppw(2, 1_000_000, 5.0) == pytest.approx(400.0)

    def test_higher_batch_higher_ppw(self):
        assert ppw(4, 1000, 1.0) > ppw(2, 1000, 1.0)

    def test_lower_latency_higher_ppw(self):
        assert ppw(1, 500, 1.0) > ppw(1, 1000, 1.0)

    def test_increase_sign(self):
        assert ppw_increase(1, 1000, 1.0, 500, 1.0) > 0
        assert ppw_increase(1, 1000, 1.0, 1000, 2.0) < 0

    def test_invalid_inputs(self):
        with pytest.raises(SchedulingError):
            ppw(0, 1000, 1.0)
        with pytest.raises(SchedulingError):
            ppw(1, 0, 1.0)
        with pytest.raises(SchedulingError):
            ppw(1, 1000, 0.0)


class TestWorkloadScheduler:
    def scheduler(self, profile, table, **kwargs):
        return WorkloadScheduler(profile, table, **kwargs)

    def test_infeasible_deadline_returns_none(self, profile, table):
        ws = self.scheduler(profile, table)
        # Deadline already essentially passed: nothing can fit.
        assert ws.decide("deeplob", now=1_000_000, deadlines=[1_000_100], power_budget_w=55.0) is None

    def test_tiny_power_budget_returns_none(self, profile, table):
        ws = self.scheduler(profile, table)
        decision = ws.decide(
            "vanilla_cnn", now=0, deadlines=[us_to_ns(10_000)], power_budget_w=0.01
        )
        assert decision is None

    def test_feasible_decision_meets_constraints(self, profile, table):
        ws = self.scheduler(profile, table)
        deadlines = [us_to_ns(2_000)] * 4
        decision = ws.decide("vanilla_cnn", now=0, deadlines=deadlines, power_budget_w=10.0)
        assert decision is not None
        assert decision.t_total_ns <= deadlines[0]
        assert decision.power_w <= 10.0
        assert 1 <= decision.batch_size <= 4

    def test_batches_under_queue_pressure(self, profile, table):
        """With many pending queries and loose deadlines, batch > 1 wins PPW."""
        ws = self.scheduler(profile, table)
        deadlines = [us_to_ns(50_000)] * 16
        decision = ws.decide("vanilla_cnn", now=0, deadlines=deadlines, power_budget_w=20.0)
        assert decision.batch_size > 1

    def test_tight_deadline_forces_small_batch_or_fast_clock(self, profile, table):
        ws = self.scheduler(profile, table)
        loose = ws.decide("deeplob", 0, [us_to_ns(100_000)] * 8, 20.0)
        tight = ws.decide("deeplob", 0, [us_to_ns(400)] * 8, 20.0)
        assert tight is not None
        assert tight.t_total_ns < loose.t_total_ns

    def test_min_deadline_within_batch_respected(self, profile, table):
        """A tight deadline deep in the queue caps the usable batch size."""
        ws = self.scheduler(profile, table)
        deadlines = [us_to_ns(50_000), us_to_ns(50_000), us_to_ns(200)] + [us_to_ns(50_000)] * 5
        decision = ws.decide("vanilla_cnn", now=0, deadlines=deadlines, power_budget_w=20.0)
        assert decision is not None
        if decision.batch_size >= 3:
            assert decision.t_total_ns <= us_to_ns(200)

    def test_floor_frequency_respected_when_feasible(self, profile, table):
        ws = self.scheduler(profile, table)
        decision = ws.decide(
            "vanilla_cnn",
            0,
            [us_to_ns(100_000)],
            power_budget_w=55.0,
            floor_freq_hz=2.0e9,
        )
        assert decision.point.freq_hz >= 2.0e9

    def test_floor_relaxed_when_power_cannot_carry_it(self, profile, table):
        """If the share can't power the floor, slower points are allowed."""
        ws = self.scheduler(profile, table)
        decision = ws.decide(
            "deeplob",
            0,
            [us_to_ns(100_000)],
            power_budget_w=1.0,
            floor_freq_hz=2.0e9,
        )
        assert decision is not None
        assert decision.point.freq_hz < 2.0e9

    def test_empty_deadlines_rejected(self, profile, table):
        with pytest.raises(SchedulingError):
            self.scheduler(profile, table).decide("vanilla_cnn", 0, [], 10.0)

    def test_metric_ablation_latency_prefers_speed(self, profile, table):
        ppw_ws = self.scheduler(profile, table, metric="ppw")
        fast_ws = self.scheduler(profile, table, metric="latency")
        deadlines = [us_to_ns(50_000)] * 8
        slow = ppw_ws.decide("vanilla_cnn", 0, deadlines, 55.0, floor_freq_hz=0.0)
        fast = fast_ws.decide("vanilla_cnn", 0, deadlines, 55.0, floor_freq_hz=0.0)
        assert fast.t_total_ns <= slow.t_total_ns
        assert fast.batch_size == 1

    def test_unknown_metric_rejected(self, profile, table):
        with pytest.raises(SchedulingError):
            self.scheduler(profile, table, metric="random")

    def test_static_decision_is_batch_one(self, profile, table):
        ws = self.scheduler(profile, table)
        decision = ws.static_decision("vanilla_cnn", table.at_ghz(2.0), 0, us_to_ns(1))
        assert decision.batch_size == 1
        assert decision.point.freq_ghz == pytest.approx(2.0)


class TestDVFSScheduler:
    def make_cluster(self, table, n=4, budget=20.0):
        return AcceleratorCluster(
            n_accelerators=n, table=table, power_model=PowerModel(), budget_w=budget
        )

    def busy_device(self, cluster, table, point_ghz=1.0, duration_us=600, deadline_us=5_000):
        device = cluster.devices[0]
        device.point = table.at_ghz(point_ghz)
        device.issue(
            0,
            us_to_ns(duration_us),
            batch_size=1,
            activity=1.5,
            deadline_ns=us_to_ns(deadline_us),
        )
        return device

    def test_redistribute_boosts_busy_device(self, profile, table):
        cluster = self.make_cluster(table)
        device = self.busy_device(cluster, table, point_ghz=1.0)
        ds = DVFSScheduler(profile, table)
        before = device.busy_until
        transitions = ds.redistribute(cluster, now=0)
        assert transitions >= 1
        assert device.point.freq_ghz > 1.0
        assert device.busy_until < before

    def test_redistribute_respects_budget(self, profile, table):
        cluster = self.make_cluster(table, n=4, budget=6.0)
        for i in range(4):
            cluster.devices[i].point = table.at_ghz(1.0)
            cluster.devices[i].issue(0, us_to_ns(600), 1, 1.5, deadline_ns=us_to_ns(5_000))
        ds = DVFSScheduler(profile, table)
        ds.redistribute(cluster, now=0)
        assert cluster.total_power(0) <= 6.0 + 1e-9

    def test_redistribute_reserve_held_back(self, profile, table):
        cluster = self.make_cluster(table, n=2, budget=8.0)
        self.busy_device(cluster, table, point_ghz=1.0)
        ds = DVFSScheduler(profile, table)
        ds.redistribute(cluster, now=0, reserve_w=6.0)
        # With most of the budget reserved, the boost must stay modest.
        assert cluster.total_power(0) <= 8.0 - 6.0 + 2.5

    def test_save_power_scales_down_within_deadline(self, profile, table):
        cluster = self.make_cluster(table)
        device = self.busy_device(
            cluster, table, point_ghz=2.2, duration_us=100, deadline_us=100_000
        )
        ds = DVFSScheduler(profile, table)
        assert ds.save_power(cluster, now=0) >= 1
        assert device.point.freq_ghz < 2.2
        assert device.busy_until + 0 <= us_to_ns(100_000)

    def test_save_power_skipped_under_queue_pressure(self, profile, table):
        cluster = self.make_cluster(table)
        device = self.busy_device(cluster, table, point_ghz=2.2, deadline_us=100_000)
        ds = DVFSScheduler(profile, table)
        assert ds.save_power(cluster, now=0, queue_pressure=True) == 0
        assert device.point.freq_ghz == pytest.approx(2.2)

    def test_save_power_respects_tight_deadline(self, profile, table):
        cluster = self.make_cluster(table)
        device = self.busy_device(
            cluster, table, point_ghz=2.0, duration_us=500, deadline_us=510
        )
        ds = DVFSScheduler(profile, table)
        assert ds.save_power(cluster, now=0) == 0
        assert device.point.freq_ghz == pytest.approx(2.0)

    def test_reclaim_frees_headroom(self, profile, table):
        cluster = self.make_cluster(table, n=2, budget=9.0)
        device = self.busy_device(
            cluster, table, point_ghz=2.2, duration_us=100, deadline_us=100_000
        )
        ds = DVFSScheduler(profile, table)
        before = cluster.headroom(0)
        assert ds.reclaim(cluster, now=0, needed_w=before + 2.0)
        assert cluster.headroom(0) >= before + 2.0

    def test_reclaim_already_satisfied(self, profile, table):
        cluster = self.make_cluster(table, budget=100.0)
        ds = DVFSScheduler(profile, table)
        assert ds.reclaim(cluster, now=0, needed_w=1.0)

    def test_boost_skipped_when_switch_eats_gain(self, profile, table):
        """A nearly-finished batch is not worth a 4 µs PMIC transition."""
        cluster = self.make_cluster(table)
        device = cluster.devices[0]
        device.point = table.at_ghz(1.0)
        device.issue(0, round(DVFS_SWITCH_NS * 1.5), 1, 1.5, deadline_ns=us_to_ns(10_000))
        ds = DVFSScheduler(profile, table)
        now = round(DVFS_SWITCH_NS * 1.4)  # almost done
        assert ds.redistribute(cluster, now=now) == 0
