"""Edge cases for MetricsCollector: empty runs, power-sample ordering,
and the step-function energy integral."""

import math

import pytest

from repro.pipeline.offload import Query
from repro.sim.metrics import MetricsCollector


def make_query(qid=0, arrival=0, deadline=1_000_000):
    return Query(query_id=qid, tick_index=qid, arrival=arrival, deadline=deadline)


class TestEmptyRuns:
    def test_zero_scored_queries(self):
        result = MetricsCollector("sys", "model").result()
        assert result.n_queries == 0
        assert result.response_rate == 0.0
        assert math.isnan(result.mean_latency_us)
        assert math.isnan(result.p50_latency_us)
        assert math.isnan(result.p99_latency_us)
        assert "n/a" in result.describe()

    def test_all_miss_run_reports_nan_not_zero(self):
        # Every query completes late: latency stats must be NaN, not a
        # fake 0 µs that would read as an impossibly fast run.
        metrics = MetricsCollector("sys", "model")
        for qid in range(3):
            metrics.record_completion(
                make_query(qid, arrival=0, deadline=100), order_time=500, batch_size=1
            )
        result = metrics.result()
        assert result.n_queries == 3
        assert result.responded == 0
        assert result.completed_late == 3
        assert math.isnan(result.mean_latency_us)
        assert "n/a" in result.describe()
        assert result.miss_rate == 1.0

    def test_all_dropped_run(self):
        metrics = MetricsCollector("sys", "model")
        for qid in range(4):
            metrics.record_drop(make_query(qid))
        result = metrics.result()
        assert result.dropped == 4
        assert math.isnan(result.mean_latency_us)

    def test_unscored_queries_do_not_count(self):
        metrics = MetricsCollector("sys", "model")
        metrics.record_drop(make_query(deadline=-1))
        metrics.record_completion(
            make_query(deadline=-1), order_time=10, batch_size=1
        )
        result = metrics.result()
        assert result.n_queries == 0
        assert metrics.unscored == 2


class TestPowerSampling:
    def test_step_integral_matches_hand_computation(self):
        # Step function: 5 W held for 2 s, then 7 W for 1 s.
        metrics = MetricsCollector("sys", "model")
        metrics.sample_power(0, 5.0)
        metrics.sample_power(2_000_000_000, 7.0)
        metrics.sample_power(3_000_000_000, 0.0)
        result = metrics.result()
        assert result.energy_j == pytest.approx(5.0 * 2 + 7.0 * 1)
        assert result.duration_s == pytest.approx(3.0)
        assert result.mean_power_w == pytest.approx(17.0 / 3.0)
        assert result.peak_power_w == 7.0

    def test_out_of_order_sample_never_rewinds_integral(self):
        metrics = MetricsCollector("sys", "model")
        metrics.sample_power(0, 10.0)
        metrics.sample_power(1_000_000_000, 20.0)
        # A stale timestamp: registers for the peak, does not perturb the
        # integral or become the held sample.
        metrics.sample_power(500_000_000, 50.0)
        metrics.sample_power(2_000_000_000, 0.0)
        result = metrics.result()
        assert result.energy_j == pytest.approx(10.0 * 1 + 20.0 * 1)
        assert result.duration_s == pytest.approx(2.0)
        assert result.peak_power_w == 50.0

    def test_equal_timestamps_last_write_wins(self):
        metrics = MetricsCollector("sys", "model")
        metrics.sample_power(0, 10.0)
        metrics.sample_power(0, 30.0)  # replaces the reading at t=0
        metrics.sample_power(1_000_000_000, 0.0)
        result = metrics.result()
        assert result.energy_j == pytest.approx(30.0)
        assert result.peak_power_w == 30.0

    def test_no_samples_is_a_zero_power_run(self):
        result = MetricsCollector("sys", "model").result()
        assert result.energy_j == 0.0
        assert result.mean_power_w == 0.0
        assert result.duration_s == 0.0
