"""The market-generation fast path: byte-identical, atomic, cached.

The contract under test (ISSUE 9): ``REPRO_MARKET_FAST`` selects a
batch-kernel generation loop (agents plan plain-int ops on a
:class:`~repro.lob.array_matching.ReplaySession`) that must produce
**byte-identical** tick tapes to the retained reference loop, under
either book engine, for any seed — plus the RNG-stream equivalences that
identity rests on, crash atomicity at chunk granularity, metric-registry
parity, and the two-level tick-tape cache (memory + npz) that campaign
probes reuse.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right

import numpy as np
import pytest

from repro.errors import OrderBookError
from repro.lob.array_matching import ArrayMatchingEngine
from repro.market.agents import Agent, AgentMix, default_mix
from repro.market.generator import MarketConfig, MarketSimulator, generate_session
from repro.market.tape_cache import (
    cached_session,
    clear_tape_cache,
    tape_cache_key,
)
from repro.metrics import MetricRegistry

PARITY_SEEDS = (3, 11, 27)
DURATION_S = 0.8


@pytest.fixture(autouse=True)
def fresh_tape_cache():
    clear_tape_cache()
    yield
    clear_tape_cache()


def tape_sha256(tmp_path, tape, label: str) -> str:
    path = tmp_path / f"{label}.ndjson"
    tape.save(path)
    return hashlib.sha256(path.read_bytes()).hexdigest()


# ---------------------------------------------------------------------------
# tape byte-identity across {fast, reference} x {array, reference engine}
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", PARITY_SEEDS)
def test_tape_sha256_parity_matrix(tmp_path, monkeypatch, seed):
    digests = set()
    for fast in ("0", "1"):
        for engine in ("array", "reference"):
            monkeypatch.setenv("REPRO_MARKET_FAST", fast)
            monkeypatch.setenv("REPRO_LOB_ENGINE", engine)
            tape = generate_session(duration_s=DURATION_S, seed=seed)
            assert len(tape) > 0
            digests.add(tape_sha256(tmp_path, tape, f"{seed}-{fast}-{engine}"))
    assert len(digests) == 1, "tape bytes must not depend on path or engine"


def test_max_ticks_early_return_parity(tmp_path, monkeypatch):
    digests = set()
    for fast in ("0", "1"):
        monkeypatch.setenv("REPRO_MARKET_FAST", fast)
        tape = MarketSimulator(MarketConfig(), seed=3).generate(
            DURATION_S, max_ticks=25
        )
        assert len(tape) == 25
        digests.add(tape_sha256(tmp_path, tape, f"cap-{fast}"))
    assert len(digests) == 1


def test_chunked_iteration_matches_unchunked(tmp_path, monkeypatch):
    """A tiny arrival chunk must not perturb either path's tape bytes."""
    baseline = {}
    for fast in ("0", "1"):
        monkeypatch.setenv("REPRO_MARKET_FAST", fast)
        tape = generate_session(duration_s=DURATION_S, seed=11)
        baseline[fast] = tape_sha256(tmp_path, tape, f"chunk-default-{fast}")
    monkeypatch.setattr("repro.market.generator._ARRIVAL_CHUNK", 7)
    for fast in ("0", "1"):
        monkeypatch.setenv("REPRO_MARKET_FAST", fast)
        tape = generate_session(duration_s=DURATION_S, seed=11)
        assert tape_sha256(tmp_path, tape, f"chunk-7-{fast}") == baseline[fast]


# ---------------------------------------------------------------------------
# the RNG-stream equivalences the fast path's draw order rests on
# ---------------------------------------------------------------------------


def test_sample_fast_matches_sample_and_stream_state():
    """CDF-bisect agent sampling consumes exactly rng.choice's one draw."""
    mix = default_mix()
    a, b = np.random.default_rng(17), np.random.default_rng(17)
    for _ in range(5_000):
        assert mix.sample(a) is mix.sample_fast(b)
    # Identical downstream draws prove identical generator state.
    assert a.integers(0, 1 << 62) == b.integers(0, 1 << 62)


def test_random_matches_uniform_and_stream_state():
    """rng.random() is a draw-for-draw substitute for rng.uniform()."""
    a, b = np.random.default_rng(23), np.random.default_rng(23)
    for _ in range(5_000):
        assert a.uniform() == b.random()
    assert a.integers(0, 1 << 62) == b.integers(0, 1 << 62)


def test_mix_cdf_inverts_choice_probabilities():
    mix = default_mix()
    probs = np.asarray(mix.weights, dtype=float)
    probs /= probs.sum()
    rng = np.random.default_rng(29)
    for _ in range(2_000):
        draw = rng.random()
        assert mix.agents[bisect_right(mix._cdf, draw)] is mix.agents[
            int(np.searchsorted(probs.cumsum() / probs.sum(), draw, side="right"))
        ]


# ---------------------------------------------------------------------------
# atomicity: a raising agent op leaves the book at the last commit
# ---------------------------------------------------------------------------


class _BombAgent(Agent):
    """Plans an op the kernel must reject (cancel of an unknown id)."""

    fast_capable = True

    def act(self, ctx, timestamp, rng):
        return []

    def act_fast(self, fctx, timestamp, rng):
        fctx.session.cancel(999_999_999)
        return True


def test_rejected_agent_op_is_atomic(monkeypatch):
    monkeypatch.setenv("REPRO_MARKET_FAST", "1")
    engine = ArrayMatchingEngine()
    monkeypatch.setattr(
        "repro.market.generator.make_matching_engine", lambda metrics=None: engine
    )
    config = MarketConfig()
    sim = MarketSimulator(
        config, mix=AgentMix(agents=(_BombAgent(),), weights=(1.0,)), seed=3
    )
    with pytest.raises(OrderBookError):
        sim.generate(1.0)
    # The uncommitted session is discarded: the book still holds exactly
    # the per-op seeded ladder, and the sequence stops at the seed ops.
    book = engine.book(config.symbol)
    assert book.bids.top(config.seed_levels) == [
        (config.initial_price - lvl, config.seed_volume)
        for lvl in range(1, config.seed_levels + 1)
    ]
    assert book.asks.top(config.seed_levels) == [
        (config.initial_price + lvl, config.seed_volume)
        for lvl in range(1, config.seed_levels + 1)
    ]
    assert book.slab.in_use == 2 * config.seed_levels
    assert engine._sequence == 2 * config.seed_levels


# ---------------------------------------------------------------------------
# metric-registry parity between the two generation paths
# ---------------------------------------------------------------------------


def test_metric_registry_parity(monkeypatch):
    snapshots = []
    for fast in ("0", "1"):
        monkeypatch.setenv("REPRO_MARKET_FAST", fast)
        registry = MetricRegistry()
        MarketSimulator(MarketConfig(), seed=5, metrics=registry).generate(1.0)
        snapshots.append(registry.public_snapshot())
    assert snapshots[0] == snapshots[1]
    assert snapshots[0]["counters"]["lob.orders"] > 0


# ---------------------------------------------------------------------------
# tick-tape cache: hit/miss byte-equality at both levels
# ---------------------------------------------------------------------------


def test_memory_cache_returns_same_tape_object():
    first = cached_session(duration_s=0.6, seed=7)
    assert cached_session(duration_s=0.6, seed=7) is first
    assert cached_session(duration_s=0.6, seed=8) is not first


def test_disk_cache_roundtrips_byte_identical(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TAPE_CACHE", str(tmp_path / "tapes"))
    fresh = generate_session(duration_s=0.6, seed=7)
    stored = cached_session(duration_s=0.6, seed=7)  # miss: generate + store
    clear_tape_cache()
    loaded = cached_session(duration_s=0.6, seed=7)  # hit: npz round-trip
    assert loaded is not stored
    assert tape_sha256(tmp_path, loaded, "loaded") == tape_sha256(
        tmp_path, stored, "stored"
    ) == tape_sha256(tmp_path, fresh, "fresh")
    key = tape_cache_key(MarketConfig(), 7, 0.6, None)
    assert (tmp_path / "tapes" / f"tape-ESU6-{key}.npz").exists()


def test_corrupt_disk_entry_regenerates(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_TAPE_CACHE", str(tmp_path / "tapes"))
    good = cached_session(duration_s=0.6, seed=7)
    key = tape_cache_key(MarketConfig(), 7, 0.6, None)
    path = tmp_path / "tapes" / f"tape-ESU6-{key}.npz"
    path.write_bytes(b"not an npz file")
    clear_tape_cache()
    regenerated = cached_session(duration_s=0.6, seed=7)
    assert tape_sha256(tmp_path, regenerated, "regen") == tape_sha256(
        tmp_path, good, "good"
    )


def test_cache_key_separates_parameters():
    config = MarketConfig()
    keys = {
        tape_cache_key(config, 7, 0.6, None),
        tape_cache_key(config, 8, 0.6, None),
        tape_cache_key(config, 7, 0.7, None),
        tape_cache_key(config, 7, 0.6, 100),
        tape_cache_key(MarketConfig(symbol="NQU6"), 7, 0.6, None),
    }
    assert len(keys) == 5


# ---------------------------------------------------------------------------
# campaign probe rides the cache
# ---------------------------------------------------------------------------


def test_book_integrity_probe_uses_tape_cache(monkeypatch):
    from repro.campaign.probes import book_integrity_probe

    calls = []
    original = MarketSimulator.generate

    def counting(self, duration_s, max_ticks=None):
        calls.append(duration_s)
        return original(self, duration_s, max_ticks)

    monkeypatch.setattr(MarketSimulator, "generate", counting)
    report = book_integrity_probe(seed=3, duration_s=0.4)
    assert report["checksum"] == report["checksum_repeat"]
    assert report["violations"] == []
    assert len(calls) == 2  # cold: one cached pass + one fresh pass
    report = book_integrity_probe(seed=3, duration_s=0.4)
    assert report["checksum"] == report["checksum_repeat"]
    assert len(calls) == 3  # warm: cache hit + the always-fresh pass
