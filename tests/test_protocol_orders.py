"""Tests for FIX and iLink3 order-entry codecs and the packet parser."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ChecksumError, ProtocolError
from repro.lob import BookUpdate, Side, UpdateAction
from repro.protocol import (
    ILink3Cancel,
    ILink3Order,
    NewOrderSingle,
    OrderCancelRequest,
    PacketParser,
    SecurityDirectory,
    decode_fields,
    encode_fields,
    encode_market_events,
    encode_udp_frame,
    frame_sofh,
    unframe_sofh,
)


class TestFixFraming:
    def test_encode_decode_roundtrip(self):
        fields = [(35, "D"), (49, "ME"), (56, "CME"), (11, "abc-1")]
        decoded = decode_fields(encode_fields(fields))
        assert decoded[0] == (8, "FIX.4.4")
        assert (35, "D") in decoded
        assert decoded[-1][0] == 10

    def test_checksum_validated(self):
        message = bytearray(encode_fields([(35, "D"), (11, "x")]))
        message[-3] = ord("9")  # corrupt checksum digits
        with pytest.raises((ChecksumError, ProtocolError)):
            decode_fields(bytes(message))

    def test_body_tampering_detected(self):
        message = bytearray(encode_fields([(35, "D"), (11, "x")]))
        idx = message.find(b"11=x")
        message[idx + 3] = ord("y")
        with pytest.raises(ChecksumError):
            decode_fields(bytes(message))

    def test_managed_tags_rejected(self):
        with pytest.raises(ProtocolError):
            encode_fields([(8, "FIX.4.4")])
        with pytest.raises(ProtocolError):
            encode_fields([(9, "10")])
        with pytest.raises(ProtocolError):
            encode_fields([(10, "000")])

    def test_missing_soh_rejected(self):
        with pytest.raises(ProtocolError):
            decode_fields(b"8=FIX.4.4")


class TestFixOrders:
    def test_new_order_roundtrip(self):
        order = NewOrderSingle(
            cl_ord_id="LT-42",
            symbol="ESU6",
            side=Side.BID,
            quantity=3,
            price=4500.25,
            sending_time_ns=1_000_000,
            seq_num=17,
        )
        assert NewOrderSingle.decode(order.encode()) == order

    def test_market_order_has_no_price(self):
        order = NewOrderSingle(
            cl_ord_id="LT-1",
            symbol="ESU6",
            side=Side.ASK,
            quantity=1,
            price=None,
            sending_time_ns=5,
        )
        decoded = NewOrderSingle.decode(order.encode())
        assert decoded.price is None
        assert b"40=1" in order.encode()

    def test_cancel_roundtrip(self):
        cancel = OrderCancelRequest(
            cl_ord_id="LT-2",
            orig_cl_ord_id="LT-1",
            symbol="ESU6",
            side=Side.BID,
            sending_time_ns=9,
        )
        assert OrderCancelRequest.decode(cancel.encode()) == cancel

    def test_wrong_msg_type_rejected(self):
        order = NewOrderSingle("a", "ES", Side.BID, 1, 1.0, 0)
        with pytest.raises(ProtocolError):
            OrderCancelRequest.decode(order.encode())

    @given(
        qty=st.integers(min_value=1, max_value=10_000),
        price=st.one_of(st.none(), st.floats(1.0, 99_999.0, allow_nan=False)),
        side=st.sampled_from([Side.BID, Side.ASK]),
    )
    @settings(max_examples=60, deadline=None)
    def test_new_order_roundtrip_property(self, qty, price, side):
        order = NewOrderSingle("id", "ESU6", side, qty, price, 123)
        decoded = NewOrderSingle.decode(order.encode())
        assert decoded.quantity == qty
        assert decoded.side is side
        if price is None:
            assert decoded.price is None
        else:
            assert decoded.price == pytest.approx(price)


class TestILink3:
    def test_order_roundtrip(self):
        order = ILink3Order(
            seq_num=1,
            sending_time=123,
            cl_ord_id=777,
            security_id=1,
            side=Side.ASK,
            order_qty=4,
            price=18_002,
        )
        assert ILink3Order.decode(order.encode()) == order

    def test_market_order_roundtrip(self):
        order = ILink3Order(
            seq_num=2,
            sending_time=5,
            cl_ord_id=8,
            security_id=1,
            side=Side.BID,
            order_qty=1,
            price=None,
            ioc=True,
        )
        decoded = ILink3Order.decode(order.encode())
        assert decoded.price is None
        assert decoded.ioc

    def test_cancel_roundtrip(self):
        cancel = ILink3Cancel(
            seq_num=3,
            sending_time=6,
            cl_ord_id=9,
            orig_cl_ord_id=8,
            security_id=1,
            side=Side.BID,
        )
        assert ILink3Cancel.decode(cancel.encode()) == cancel

    def test_sofh_length_validated(self):
        framed = frame_sofh(b"abcdef")
        with pytest.raises(ProtocolError):
            unframe_sofh(framed + b"extra")
        with pytest.raises(ProtocolError):
            unframe_sofh(framed[:-1])

    def test_sofh_roundtrip(self):
        assert unframe_sofh(frame_sofh(b"payload")) == b"payload"

    def test_cross_decode_rejected(self):
        order = ILink3Order(1, 2, 3, 4, Side.BID, 1, 10)
        with pytest.raises(ProtocolError):
            ILink3Cancel.decode(order.encode())


class TestPacketParser:
    @pytest.fixture
    def setup(self):
        directory = SecurityDirectory()
        directory.register("ESU6")
        directory.register("NQU6")
        parser = PacketParser(directory, subscribed_symbols={"ESU6"})
        return directory, parser

    def _frame(self, directory, symbol="ESU6"):
        events = [BookUpdate(symbol, 10, UpdateAction.NEW, Side.BID, 18_000, 5, 1)]
        return encode_udp_frame(encode_market_events(events, directory, 10))

    def test_parses_subscribed_symbol(self, setup):
        directory, parser = setup
        packet = parser.parse_frame(self._frame(directory))
        assert packet is not None
        assert packet.transact_time == 10
        assert packet.events[0].symbol == "ESU6"
        assert parser.stats.events_decoded == 1

    def test_filters_unsubscribed_symbol(self, setup):
        directory, parser = setup
        assert parser.parse_frame(self._frame(directory, "NQU6")) is None
        assert parser.stats.messages_filtered == 1

    def test_malformed_frame_counted_not_raised(self, setup):
        __, parser = setup
        assert parser.parse_frame(b"garbage") is None
        assert parser.stats.frames_malformed == 1

    def test_no_subscription_filter_passes_all(self):
        directory = SecurityDirectory()
        directory.register("ESU6")
        parser = PacketParser(directory)
        packet = parser.parse_frame(self._frame(directory))
        assert packet is not None
