"""Tests for the event queue, workload builders and metrics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.market import generate_session
from repro.pipeline.offload import Query
from repro.sim import (
    EventKind,
    EventQueue,
    FixedDeadline,
    HorizonDeadline,
    MetricsCollector,
    OpportunityDeadline,
    QueryWorkload,
    Regime,
    TrafficSpec,
    synthetic_workload,
)


class TestEventQueue:
    def test_time_ordering(self):
        queue = EventQueue()
        queue.push(30, EventKind.ARRIVAL, "c")
        queue.push(10, EventKind.ARRIVAL, "a")
        queue.push(20, EventKind.ARRIVAL, "b")
        assert [queue.pop()[2] for __ in range(3)] == ["a", "b", "c"]

    def test_completion_before_arrival_at_same_time(self):
        queue = EventQueue()
        queue.push(10, EventKind.ARRIVAL, "arrival")
        queue.push(10, EventKind.COMPLETION, "completion")
        assert queue.pop()[2] == "completion"

    def test_fault_tiebreak_between_completion_and_arrival(self):
        # A batch finishing at the fault instant still counts; an arrival
        # at the fault instant already sees the degraded cluster.
        queue = EventQueue()
        queue.push(10, EventKind.ARRIVAL, "arrival")
        queue.push(10, EventKind.FAULT, "fault")
        queue.push(10, EventKind.COMPLETION, "completion")
        queue.push(10, EventKind.RETRY, "retry")
        order = [queue.pop()[2] for __ in range(4)]
        assert order == ["completion", "retry", "fault", "arrival"]

    def test_insertion_order_tiebreak(self):
        queue = EventQueue()
        queue.push(10, EventKind.ARRIVAL, 1)
        queue.push(10, EventKind.ARRIVAL, 2)
        assert queue.pop()[2] == 1

    def test_no_time_travel(self):
        queue = EventQueue()
        queue.push(100, EventKind.ARRIVAL, None)
        queue.pop()
        with pytest.raises(SimulationError):
            queue.push(50, EventKind.ARRIVAL, None)

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_pops_sorted_property(self, times):
        queue = EventQueue()
        for t in times:
            queue.push(t, EventKind.ARRIVAL, None)
        popped = [queue.pop()[0] for __ in range(len(times))]
        assert popped == sorted(times)


class TestDeadlinePolicies:
    def test_horizon_deadline(self):
        ts = np.array([0, 10, 20, 30, 40], dtype=np.int64)
        deadlines = HorizonDeadline(horizon=2).deadlines(ts)
        np.testing.assert_array_equal(deadlines, [20, 30, 40, -1, -1])

    def test_fixed_deadline(self):
        ts = np.array([0, 10], dtype=np.int64)
        np.testing.assert_array_equal(FixedDeadline(5).deadlines(ts), [5, 15])

    def test_opportunity_deadline_distribution(self):
        ts = np.zeros(50_000, dtype=np.int64)
        policy = OpportunityDeadline(median_ns=1_000_000, sigma=1.0, seed=0)
        budgets = policy.deadlines(ts)
        assert np.median(budgets) == pytest.approx(1_000_000, rel=0.05)
        # lognormal: ~16% below median/e^sigma
        assert np.mean(budgets < 1_000_000 / np.e) == pytest.approx(0.16, abs=0.02)

    def test_opportunity_deterministic(self):
        ts = np.arange(100, dtype=np.int64)
        a = OpportunityDeadline(seed=5).deadlines(ts)
        b = OpportunityDeadline(seed=5).deadlines(ts)
        np.testing.assert_array_equal(a, b)

    def test_invalid_params(self):
        ts = np.zeros(3, dtype=np.int64)
        with pytest.raises(SimulationError):
            HorizonDeadline(0).deadlines(ts)
        with pytest.raises(SimulationError):
            FixedDeadline(0).deadlines(ts)
        with pytest.raises(SimulationError):
            OpportunityDeadline(median_ns=0).deadlines(ts)


class TestWorkload:
    def test_from_tape(self):
        tape = generate_session(duration_s=1.0, seed=2)
        workload = QueryWorkload.from_tape(tape, HorizonDeadline(horizon=10))
        assert len(workload) == len(tape)
        assert workload.scored_count == len(tape) - 10

    def test_synthetic_deterministic(self):
        a = synthetic_workload(10.0, seed=3)
        b = synthetic_workload(10.0, seed=3)
        np.testing.assert_array_equal(a.timestamps, b.timestamps)
        np.testing.assert_array_equal(a.deadlines, b.deadlines)

    def test_synthetic_sorted_and_tagged(self):
        wl = synthetic_workload(10.0, seed=3)
        assert (np.diff(wl.timestamps) >= 0).all()
        assert wl.regimes is not None
        assert set(np.unique(wl.regimes)) <= {"calm", "elevated", "active", "burst"}

    def test_regime_rates_ordered(self):
        """Median gaps per regime should follow the configured rates."""
        wl = synthetic_workload(60.0, seed=3)
        gaps = np.diff(wl.timestamps)
        regimes = wl.regimes[1:]
        medians = {}
        for name in ("calm", "burst"):
            mask = regimes == name
            if mask.sum() > 10:
                medians[name] = np.median(gaps[mask])
        assert medians["burst"] < medians["calm"]

    def test_misaligned_rejected(self):
        with pytest.raises(SimulationError):
            QueryWorkload(
                timestamps=np.array([1, 2], dtype=np.int64),
                deadlines=np.array([5], dtype=np.int64),
            )

    def test_unsorted_rejected(self):
        with pytest.raises(SimulationError):
            QueryWorkload(
                timestamps=np.array([5, 1], dtype=np.int64),
                deadlines=np.array([9, 9], dtype=np.int64),
            )

    def test_bad_spec_rejected(self):
        with pytest.raises(SimulationError):
            TrafficSpec(episode_weights=(1.0,))
        with pytest.raises(SimulationError):
            Regime("x", rate_hz=0, mean_dwell_s=1)
        with pytest.raises(SimulationError):
            synthetic_workload(0.0)


class TestMetrics:
    def make_query(self, arrival=0, deadline=1_000_000):
        return Query(query_id=0, tick_index=0, arrival=arrival, deadline=deadline)

    def test_response_and_miss(self):
        metrics = MetricsCollector("sys", "model")
        metrics.record_completion(self.make_query(), order_time=500_000, batch_size=1)
        metrics.record_completion(self.make_query(), order_time=2_000_000, batch_size=1)
        metrics.record_drop(self.make_query())
        result = metrics.result()
        assert result.n_queries == 3
        assert result.responded == 1
        assert result.completed_late == 1
        assert result.dropped == 1
        assert result.response_rate == pytest.approx(1 / 3)
        assert result.miss_rate == pytest.approx(2 / 3)

    def test_unscored_excluded(self):
        metrics = MetricsCollector("sys", "model")
        metrics.record_completion(self.make_query(deadline=-1), 100, 1)
        metrics.record_drop(self.make_query(deadline=-1))
        result = metrics.result()
        assert result.n_queries == 0
        assert metrics.unscored == 2

    def test_latency_statistics(self):
        metrics = MetricsCollector("sys", "model")
        for us in (100, 200, 300):
            metrics.record_completion(
                self.make_query(arrival=0), order_time=us * 1_000, batch_size=2
            )
        result = metrics.result()
        assert result.mean_latency_us == pytest.approx(200)
        assert result.p50_latency_us == pytest.approx(200)
        assert result.mean_batch_size == 2.0

    def test_power_integration(self):
        metrics = MetricsCollector("sys", "model")
        metrics.sample_power(0, 10.0)
        metrics.sample_power(1_000_000_000, 20.0)  # 1 s at 10 W
        metrics.sample_power(2_000_000_000, 0.0)  # 1 s at 20 W
        result = metrics.result()
        assert result.energy_j == pytest.approx(30.0)
        assert result.mean_power_w == pytest.approx(15.0)
        assert result.peak_power_w == 20.0

    def test_describe(self):
        metrics = MetricsCollector("sys", "model")
        metrics.record_completion(self.make_query(), 100, 1)
        assert "sys/model" in metrics.result().describe()
