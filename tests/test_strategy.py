"""Tests for labelling, the trainable classifier and P&L accounting."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.lob import Side
from repro.market import generate_session
from repro.strategy import (
    DOWN,
    STATIONARY,
    UP,
    PnLTracker,
    SoftmaxClassifier,
    build_dataset,
    movement_labels,
)


class TestLabels:
    def test_trending_up_labelled_up(self):
        mids = np.linspace(100, 110, 200)
        labels = movement_labels(mids, horizon=10, threshold=1e-4)
        core = labels[10:-10]
        assert (core == UP).all()

    def test_trending_down_labelled_down(self):
        mids = np.linspace(110, 100, 200)
        labels = movement_labels(mids, horizon=10, threshold=1e-4)
        assert (labels[10:-10] == DOWN).all()

    def test_flat_labelled_stationary(self):
        mids = np.full(100, 50.0)
        labels = movement_labels(mids, horizon=10, threshold=1e-4)
        assert (labels[10:-10] == STATIONARY).all()

    def test_edges_undefined(self):
        labels = movement_labels(np.linspace(1, 2, 50), horizon=10)
        assert (labels[:10] == -1).all()
        assert (labels[-10:] == -1).all()

    def test_invalid_horizon(self):
        with pytest.raises(SimulationError):
            movement_labels(np.ones(10), horizon=0)


class TestDataset:
    @pytest.fixture(scope="class")
    def tape(self):
        return generate_session(duration_s=4.0, seed=21)

    def test_build_shapes(self, tape):
        ds = build_dataset(tape, window=50, horizon=10)
        assert ds.features.shape[1:] == (50, 40)
        assert len(ds.features) == len(ds.labels) == len(ds.indices)
        assert set(np.unique(ds.labels)) <= {0, 1, 2}

    def test_class_balance_sums_to_one(self, tape):
        ds = build_dataset(tape, window=50, horizon=10)
        assert ds.class_balance().sum() == pytest.approx(1.0)

    def test_chronological_split(self, tape):
        ds = build_dataset(tape, window=50, horizon=10)
        train, test = ds.split(0.7)
        assert len(train) + len(test) == len(ds)
        assert train.indices[-1] < test.indices[0]

    def test_invalid_split(self, tape):
        ds = build_dataset(tape, window=50, horizon=10)
        with pytest.raises(SimulationError):
            ds.split(1.5)

    def test_too_short_tape_rejected(self):
        tape = generate_session(duration_s=0.05, seed=0)
        with pytest.raises(SimulationError):
            build_dataset(tape, window=100_000, horizon=10)


class TestClassifier:
    def test_learns_separable_problem(self):
        rng = np.random.default_rng(0)
        n = 600
        x = rng.standard_normal((n, 4, 5)).astype(np.float32)
        y = (x[:, 0, 0] > 0.5).astype(int) + (x[:, 0, 0] > -0.5).astype(int)
        from repro.strategy.labels import LabelledDataset

        ds = LabelledDataset(x, y.astype(np.int64), np.arange(n))
        train, test = ds.split(0.7)
        clf = SoftmaxClassifier(seed=1)
        report = clf.fit(train, epochs=60, learning_rate=0.3, test=test)
        assert report.test_accuracy > report.baseline_accuracy + 0.1
        assert report.train_losses[-1] < report.train_losses[0]

    def test_predict_before_fit_rejected(self):
        from repro.errors import ModelError

        with pytest.raises(ModelError):
            SoftmaxClassifier().predict_proba(np.zeros((1, 2, 2)))

    def test_probabilities_valid(self):
        rng = np.random.default_rng(0)
        from repro.strategy.labels import LabelledDataset

        ds = LabelledDataset(
            rng.standard_normal((50, 3, 3)).astype(np.float32),
            rng.integers(0, 3, 50),
            np.arange(50),
        )
        clf = SoftmaxClassifier()
        clf.fit(ds, epochs=2)
        probs = clf.predict_proba(ds.features)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-9)
        assert (probs >= 0).all()


class TestPnL:
    def test_round_trip_profit(self):
        pnl = PnLTracker(fee_per_contract=0.0)
        pnl.on_fill(Side.BID, price_ticks=18_000, quantity=1)  # buy at 4500.00
        pnl.on_fill(Side.ASK, price_ticks=18_004, quantity=1)  # sell at 4501.00
        report = pnl.report(final_mid_ticks=18_004)
        assert report.net_pnl == pytest.approx(1.0 * 50.0)  # 1 point * $50
        assert report.final_position == 0
        assert report.hit_rate == 1.0

    def test_round_trip_loss(self):
        pnl = PnLTracker(fee_per_contract=0.0)
        pnl.on_fill(Side.BID, 18_000, 1)
        pnl.on_fill(Side.ASK, 17_996, 1)
        report = pnl.report(17_996)
        assert report.net_pnl == pytest.approx(-50.0)
        assert report.hit_rate == 0.0

    def test_fees_reduce_pnl(self):
        flat = PnLTracker(fee_per_contract=0.0)
        fees = PnLTracker(fee_per_contract=1.0)
        for tracker in (flat, fees):
            tracker.on_fill(Side.BID, 18_000, 1)
            tracker.on_fill(Side.ASK, 18_000, 1)
        assert fees.report(18_000).net_pnl == flat.report(18_000).net_pnl - 2.0

    def test_mark_to_market_open_position(self):
        pnl = PnLTracker(fee_per_contract=0.0)
        pnl.on_fill(Side.BID, 18_000, 2)
        equity = pnl.mark(18_002)
        assert equity == pytest.approx(2 * 2 * 0.25 * 50.0)  # 2 lots, 2 ticks

    def test_drawdown_computed(self):
        pnl = PnLTracker(fee_per_contract=0.0)
        pnl.on_fill(Side.BID, 18_000, 1)
        pnl.mark(18_008)  # up
        pnl.mark(17_992)  # down
        report = pnl.report(17_992)
        assert report.max_drawdown == pytest.approx((18_008 - 17_992) * 0.25 * 50)

    def test_invalid_fill_rejected(self):
        with pytest.raises(SimulationError):
            PnLTracker().on_fill(Side.BID, 18_000, 0)
