"""The parity-pair manifest stays complete and truthful.

Completeness: every ``REPRO_*`` switch that selects between
implementations (discovered from the envcfg registry itself) appears in
the manifest.  Truthfulness: every pair member the manifest names
actually exists in the tree — a rename that orphans a manifest entry
fails here even before RL006 reports the drift.
"""

from __future__ import annotations

from pathlib import Path

from repro import envcfg
from repro.lint import build_context
from repro.lint.facts import extract_facts
from repro.lint.parity_manifest import (
    PARITY_PAIRS,
    ClassPair,
    FunctionPair,
    manifest_switches,
    selector_switches,
)
from repro.lint.project import build_model

REPO_ROOT = Path(__file__).resolve().parent.parent


def real_model():
    src = REPO_ROOT / "src"
    facts = [
        extract_facts(
            build_context(p.read_text(), p.relative_to(REPO_ROOT).as_posix())
        )
        for p in sorted(src.rglob("*.py"))
    ]
    return build_model(facts)


def test_every_selector_switch_is_in_the_manifest():
    missing = selector_switches() - manifest_switches()
    assert not missing, (
        f"implementation-selecting switches missing from PARITY_PAIRS: "
        f"{sorted(missing)}"
    )


def test_manifest_switches_are_declared_env_vars():
    declared = {var.name for var in envcfg.declared()}
    assert manifest_switches() <= declared


def test_known_selectors_are_discovered():
    # The four dispatch switches the repo ships today; a new selector
    # must extend this list *and* the manifest.
    assert selector_switches() == {
        "REPRO_FAST_LOOP",
        "REPRO_SWEEP_REFERENCE",
        "REPRO_MARKET_FAST",
        "REPRO_LOB_ENGINE",
    }


def test_every_pair_member_exists_in_tree():
    model = real_model()
    for pair in PARITY_PAIRS:
        if isinstance(pair, FunctionPair):
            for module, qualname in (pair.reference, pair.fast):
                assert model.function(module, qualname) is not None, (
                    f"{pair.name}: {module}::{qualname} not found"
                )
        else:
            assert isinstance(pair, ClassPair)
            for module, cls in (pair.reference, pair.fast):
                assert model.class_methods(module, cls) is not None, (
                    f"{pair.name}: {module}::{cls} not found"
                )


def test_pair_names_are_unique():
    names = [pair.name for pair in PARITY_PAIRS]
    assert len(names) == len(set(names))


def test_allowances_are_referenced_tokens():
    # Every token allowance must use the Family.TOKEN spelling RL006
    # compares with; a typo here would silently allow everything.
    for pair in PARITY_PAIRS:
        if not isinstance(pair, FunctionPair):
            continue
        for token in pair.fast_only_tokens | pair.reference_only_tokens:
            family, _, name = token.partition(".")
            assert family and name, f"{pair.name}: malformed allowance {token!r}"
