"""Tests for the SBE codec and market-event encoding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ProtocolError
from repro.lob import BookUpdate, Side, TradeTick, UpdateAction
from repro.protocol import (
    MD_INCREMENTAL_REFRESH_BOOK,
    FieldSpec,
    GroupSpec,
    MessageSchema,
    SecurityDirectory,
    decode_market_events,
    decode_message,
    encode_market_events,
    encode_message,
    peek_template_id,
)

TOY = MessageSchema(
    name="Toy",
    template_id=7,
    root_fields=(FieldSpec("a", "I"), FieldSpec("b", "h")),
    groups=(GroupSpec("items", (FieldSpec("x", "q"), FieldSpec("y", "B"))),),
)


class TestGenericCodec:
    def test_roundtrip(self):
        msg = {"a": 42, "b": -3, "items": [{"x": 10**12, "y": 255}, {"x": -5, "y": 0}]}
        assert decode_message(TOY, encode_message(TOY, msg)) == msg

    def test_empty_group(self):
        msg = {"a": 1, "b": 2, "items": []}
        assert decode_message(TOY, encode_message(TOY, msg))["items"] == []

    def test_peek_template_id(self):
        payload = encode_message(TOY, {"a": 1, "b": 2, "items": []})
        assert peek_template_id(payload) == 7

    def test_wrong_template_rejected(self):
        payload = encode_message(TOY, {"a": 1, "b": 2, "items": []})
        with pytest.raises(ProtocolError):
            decode_message(MD_INCREMENTAL_REFRESH_BOOK, payload)

    def test_missing_root_field_rejected(self):
        with pytest.raises(ProtocolError):
            encode_message(TOY, {"a": 1, "items": []})

    def test_missing_group_field_rejected(self):
        with pytest.raises(ProtocolError):
            encode_message(TOY, {"a": 1, "b": 2, "items": [{"x": 1}]})

    def test_truncated_payload_rejected(self):
        payload = encode_message(TOY, {"a": 1, "b": 2, "items": [{"x": 1, "y": 2}]})
        for cut in (3, 9, len(payload) - 1):
            with pytest.raises(ProtocolError):
                decode_message(TOY, payload[:cut])

    def test_oversized_group_rejected(self):
        entries = [{"x": 0, "y": 0}] * 300
        with pytest.raises(ProtocolError):
            encode_message(TOY, {"a": 1, "b": 2, "items": entries})

    @given(
        a=st.integers(min_value=0, max_value=2**32 - 1),
        b=st.integers(min_value=-(2**15), max_value=2**15 - 1),
        items=st.lists(
            st.fixed_dictionaries(
                {
                    "x": st.integers(min_value=-(2**63), max_value=2**63 - 1),
                    "y": st.integers(min_value=0, max_value=255),
                }
            ),
            max_size=50,
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, a, b, items):
        msg = {"a": a, "b": b, "items": items}
        assert decode_message(TOY, encode_message(TOY, msg)) == msg


class TestSecurityDirectory:
    def test_register_and_lookup(self):
        d = SecurityDirectory()
        sid = d.register("ESU6")
        assert d.id_of("ESU6") == sid
        assert d.symbol_of(sid) == "ESU6"

    def test_register_idempotent(self):
        d = SecurityDirectory()
        assert d.register("ESU6") == d.register("ESU6")

    def test_duplicate_id_rejected(self):
        d = SecurityDirectory()
        d.register("ESU6", 5)
        with pytest.raises(ProtocolError):
            d.register("NQU6", 5)

    def test_unknown_lookups_raise(self):
        d = SecurityDirectory()
        with pytest.raises(ProtocolError):
            d.id_of("NOPE")
        with pytest.raises(ProtocolError):
            d.symbol_of(99)


class TestMarketEventEncoding:
    @pytest.fixture
    def directory(self):
        d = SecurityDirectory()
        d.register("ESU6")
        return d

    def test_book_update_roundtrip(self, directory):
        update = BookUpdate(
            symbol="ESU6",
            timestamp=123,
            action=UpdateAction.CHANGE,
            side=Side.ASK,
            price=18_005,
            volume=17,
            sequence=9,
        )
        payload = encode_market_events([update], directory, transact_time=123)
        t, events = decode_market_events(payload, directory)
        assert t == 123
        decoded = events[0]
        assert isinstance(decoded, BookUpdate)
        assert decoded.price == 18_005
        assert decoded.volume == 17
        assert decoded.side is Side.ASK
        assert decoded.action is UpdateAction.CHANGE
        assert decoded.sequence == 9

    def test_trade_roundtrip(self, directory):
        trade = TradeTick(
            symbol="ESU6",
            timestamp=55,
            price=18_001,
            quantity=3,
            aggressor_side=Side.BID,
            sequence=2,
        )
        payload = encode_market_events([trade], directory, transact_time=55)
        __, events = decode_market_events(payload, directory)
        decoded = events[0]
        assert isinstance(decoded, TradeTick)
        assert decoded.price == 18_001
        assert decoded.quantity == 3

    def test_mixed_batch_preserves_order(self, directory):
        events = [
            BookUpdate("ESU6", 1, UpdateAction.NEW, Side.BID, 18_000, 5, 1),
            TradeTick("ESU6", 1, 18_001, 2, Side.BID, 2),
            BookUpdate("ESU6", 1, UpdateAction.DELETE, Side.ASK, 18_001, 0, 3),
        ]
        payload = encode_market_events(events, directory, transact_time=1)
        __, decoded = decode_market_events(payload, directory)
        assert [type(e).__name__ for e in decoded] == [
            "BookUpdate",
            "TradeTick",
            "BookUpdate",
        ]

    def test_unknown_symbol_rejected(self, directory):
        update = BookUpdate("NOPE", 1, UpdateAction.NEW, Side.BID, 1, 1, 1)
        with pytest.raises(ProtocolError):
            encode_market_events([update], directory, transact_time=1)
