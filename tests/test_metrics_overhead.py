"""Metrics must be free when disabled and allocation-flat when enabled.

Mirrors ``test_telemetry_overhead.py``: the scoring loop, feed handler
and offload queue are permanently instrumented, and the contract that
makes this acceptable is (a) ``REPRO_METRICS=0`` touches only shared
no-op instruments — zero bytes allocated inside ``repro/metrics`` — and
(b) with metrics on, hot-path updates mutate pre-allocated slots and
array buckets, so steady-state allocation stays bounded by small-int
boxing, never per-event object churn.  Allocation counts, not
wall-clock, so the tests cannot flake with machine load.
"""

import tracemalloc

from repro.baselines import lighttrader_profile
from repro.metrics import NULL_METRICS, MetricRegistry
from repro.sim.backtest import Backtester, SimConfig
from repro.sim.workload_cache import cached_synthetic_workload

_CONFIG = dict(
    model="deeplob",
    n_accelerators=2,
    workload_scheduling=True,
    dvfs_scheduling=True,
)


def _run(metrics):
    profile = lighttrader_profile()
    workload = cached_synthetic_workload(2.0, seed=4, name="overhead")
    Backtester(workload, profile, SimConfig(**_CONFIG), metrics=metrics).run()


def _metrics_bytes(metrics):
    # Warm every lazy cache (anchor calibration, sweep grids, workload
    # cache) so the traced window sees only steady-state work.
    _run(MetricRegistry(enabled=False))
    metrics_filter = tracemalloc.Filter(True, "*/repro/metrics/*")
    tracemalloc.start(10)
    try:
        _run(metrics)
        snapshot = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    stats = snapshot.filter_traces([metrics_filter]).statistics("filename")
    return sum(stat.size for stat in stats), stats


def test_disabled_metrics_allocate_nothing():
    allocated, stats = _metrics_bytes(MetricRegistry(enabled=False))
    assert allocated == 0, (
        f"repro.metrics allocated {allocated} bytes while disabled: "
        f"{[str(s) for s in stats]}"
    )


def test_null_registry_is_shared_and_inert():
    assert NULL_METRICS.counter("a") is NULL_METRICS.histogram("b")
    assert MetricRegistry(enabled=False).counter("c") is NULL_METRICS.counter("d")


def test_enabled_metrics_stay_allocation_flat():
    # A pre-populated registry (instruments already created by a first
    # run) must not grow per-event: counter/gauge slots and histogram
    # bucket arrays are in place, so live-size growth during the traced
    # run is bounded by boxed ints/floats, not per-query allocations.
    registry = MetricRegistry()
    _run(registry)  # create every instrument once
    allocated, stats = _metrics_bytes(registry)
    workload = cached_synthetic_workload(2.0, seed=4, name="overhead")
    budget = 2048
    assert allocated < budget, (
        f"repro.metrics allocated {allocated} bytes across "
        f"{len(workload)} queries (budget {budget}): "
        f"{[str(s) for s in stats]}"
    )
