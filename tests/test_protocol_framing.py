"""Tests for Ethernet/IPv4/UDP framing."""

import pytest

from repro.errors import ChecksumError, ProtocolError
from repro.protocol import decode_udp_frame, encode_udp_frame, ipv4_checksum
from repro.protocol.framing import TOTAL_HEADER_LEN


class TestRoundtrip:
    def test_payload_roundtrip(self):
        payload = b"hello market data"
        frame = encode_udp_frame(payload)
        info, out = decode_udp_frame(frame)
        assert out == payload

    def test_addressing_preserved(self):
        frame = encode_udp_frame(b"x", src_port=1234, dst_port=5678)
        info, __ = decode_udp_frame(frame)
        assert info.src_port == 1234
        assert info.dst_port == 5678

    def test_empty_payload(self):
        frame = encode_udp_frame(b"")
        __, out = decode_udp_frame(frame)
        assert out == b""

    def test_frame_length(self):
        payload = b"q" * 100
        frame = encode_udp_frame(payload)
        assert len(frame) == TOTAL_HEADER_LEN + 100


class TestValidation:
    def test_short_frame_rejected(self):
        with pytest.raises(ProtocolError):
            decode_udp_frame(b"tooshort")

    def test_corrupt_ip_checksum_detected(self):
        frame = bytearray(encode_udp_frame(b"payload"))
        frame[30] ^= 0xFF  # flip a bit inside the destination IP
        with pytest.raises(ChecksumError):
            decode_udp_frame(bytes(frame))

    def test_wrong_ethertype_rejected(self):
        frame = bytearray(encode_udp_frame(b"payload"))
        frame[12] = 0x86  # pretend IPv6
        frame[13] = 0xDD
        with pytest.raises(ProtocolError):
            decode_udp_frame(bytes(frame))

    def test_oversized_payload_rejected(self):
        with pytest.raises(ProtocolError):
            encode_udp_frame(b"z" * 70_000)

    def test_truncated_udp_rejected(self):
        frame = encode_udp_frame(b"0123456789")
        with pytest.raises(ProtocolError):
            decode_udp_frame(frame[:-5])


class TestChecksum:
    def test_checksum_zero_header_is_ffff(self):
        assert ipv4_checksum(b"\x00" * 20) == 0xFFFF

    def test_checksum_involutive(self):
        # Re-inserting the checksum makes the full-header sum fold to zero.
        import struct

        header = bytearray(20)
        header[0] = 0x45
        header[9] = 17
        csum = ipv4_checksum(bytes(header))
        header[10:12] = struct.pack("!H", csum)
        assert ipv4_checksum(bytes(header)) == 0

    def test_odd_length_padding(self):
        assert isinstance(ipv4_checksum(b"\x01\x02\x03"), int)


class TestSequencedPayload:
    def test_roundtrip(self):
        from repro.protocol.framing import (
            decode_sequenced_payload,
            encode_sequenced_payload,
        )

        body = b"market data bytes"
        for sequence in (0, 1, 7_842, 0xFFFFFFFF):
            payload = encode_sequenced_payload(sequence, body)
            assert decode_sequenced_payload(payload) == (sequence, body)

    def test_out_of_range_sequence_rejected(self):
        from repro.protocol.framing import encode_sequenced_payload

        with pytest.raises(ProtocolError):
            encode_sequenced_payload(-1, b"x")
        with pytest.raises(ProtocolError):
            encode_sequenced_payload(0x1_0000_0000, b"x")

    def test_truncated_payload_rejected(self):
        from repro.protocol.framing import decode_sequenced_payload

        with pytest.raises(ProtocolError):
            decode_sequenced_payload(b"\x00\x01")

    def test_rides_inside_udp_frame(self):
        from repro.protocol.framing import (
            decode_sequenced_payload,
            encode_sequenced_payload,
        )

        frame = encode_udp_frame(encode_sequenced_payload(42, b"body"))
        __, payload = decode_udp_frame(frame)
        assert decode_sequenced_payload(payload) == (42, b"body")
