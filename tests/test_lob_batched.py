"""Tests for :class:`repro.lob.BatchedBooks` (vectorized multi-book).

BatchedBooks trades per-order attribution for throughput but must keep
the aggregate level dynamics of the single-book engines: the cross-check
here replays the same op stream through per-book
:class:`ArrayMatchingEngine` instances and requires identical (price,
volume) ladders after every step, plus never-crossed books, FOK
semantics (including MARKET+FOK) and sublinear per-book scaling.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.errors import OrderBookError
from repro.lob import (
    ArrayMatchingEngine,
    BatchedBooks,
    BookOps,
    Order,
    OrderType,
    Side,
    TimeInForce,
)
from repro.lob.batched import OP_LIMIT, OP_MARKET, OP_NOP, OP_REDUCE


def ops_of(rows):
    """Build a BookOps from (kind, side, price, qty, tif) per-book rows."""
    kind, side, price, qty, tif = (np.array(col, dtype=np.int64) for col in zip(*rows))
    return BookOps(kind=kind, side=side, price=price, qty=qty, tif=tif)


def random_ops(rng, n_books):
    """One random (mostly-legal) operation per book."""
    rows = []
    for _ in range(n_books):
        r = rng.uniform()
        if r < 0.75:
            kind = OP_LIMIT if rng.uniform() < 0.85 else OP_MARKET
            rows.append(
                (
                    kind,
                    int(rng.integers(0, 2)),
                    int(rng.integers(95, 106)),
                    int(rng.integers(1, 10)),
                    int(rng.choice([0, 1, 2], p=[0.6, 0.3, 0.1])),
                )
            )
        elif r < 0.9:
            rows.append(
                (
                    OP_REDUCE,
                    int(rng.integers(0, 2)),
                    int(rng.integers(95, 106)),
                    int(rng.integers(1, 6)),
                    0,
                )
            )
        else:
            rows.append((OP_NOP, 0, 0, 0, 0))
    return rows


class TestBasics:
    def test_limit_rests_and_market_sweeps(self):
        books = BatchedBooks(2)
        books.step(
            ops_of(
                [
                    (OP_LIMIT, int(Side.ASK), 101, 5, int(TimeInForce.DAY)),
                    (OP_LIMIT, int(Side.ASK), 200, 7, int(TimeInForce.DAY)),
                ]
            )
        )
        assert books.levels(0, Side.ASK) == [(101, 5)]
        assert books.levels(1, Side.ASK) == [(200, 7)]
        result = books.step(
            ops_of(
                [
                    (OP_MARKET, int(Side.BID), 0, 5, int(TimeInForce.DAY)),
                    (OP_NOP, 0, 0, 0, 0),
                ]
            )
        )
        assert result.filled.tolist() == [5, 0]
        assert result.notional.tolist() == [505, 0]
        assert books.levels(0, Side.ASK) == []
        assert books.levels(1, Side.ASK) == [(200, 7)]

    def test_partial_fill_rests_remainder_day_only(self):
        books = BatchedBooks(2)
        books.step(
            ops_of(
                [
                    (OP_LIMIT, int(Side.ASK), 101, 3, int(TimeInForce.DAY)),
                    (OP_LIMIT, int(Side.ASK), 101, 3, int(TimeInForce.DAY)),
                ]
            )
        )
        result = books.step(
            ops_of(
                [
                    (OP_LIMIT, int(Side.BID), 101, 5, int(TimeInForce.DAY)),
                    (OP_LIMIT, int(Side.BID), 101, 5, int(TimeInForce.IOC)),
                ]
            )
        )
        assert result.filled.tolist() == [3, 3]
        assert books.levels(0, Side.BID) == [(101, 2)]  # DAY remainder rests
        assert books.levels(1, Side.BID) == []  # IOC remainder discarded

    def test_fok_rejects_unless_fully_fillable(self):
        books = BatchedBooks(3)
        books.step(
            ops_of(
                [
                    (OP_LIMIT, int(Side.ASK), 101, 5, int(TimeInForce.DAY)),
                    (OP_LIMIT, int(Side.ASK), 101, 5, int(TimeInForce.DAY)),
                    (OP_LIMIT, int(Side.ASK), 101, 5, int(TimeInForce.DAY)),
                ]
            )
        )
        result = books.step(
            ops_of(
                [
                    (OP_LIMIT, int(Side.BID), 101, 9, int(TimeInForce.FOK)),
                    (OP_MARKET, int(Side.BID), 0, 9, int(TimeInForce.FOK)),
                    (OP_MARKET, int(Side.BID), 0, 5, int(TimeInForce.FOK)),
                ]
            )
        )
        # Books 0 and 1 reject (only 5 available); MARKET+FOK must NOT
        # degrade to IOC.  Book 2 fills completely.
        assert result.rejected.tolist() == [True, True, False]
        assert result.filled.tolist() == [0, 0, 5]
        assert books.levels(0, Side.ASK) == [(101, 5)]  # untouched
        assert books.levels(1, Side.ASK) == [(101, 5)]
        assert books.levels(2, Side.ASK) == []

    def test_reduce_shrinks_and_drops_levels(self):
        books = BatchedBooks(1)
        books.step(ops_of([(OP_LIMIT, int(Side.BID), 100, 5, 0)]))
        books.step(ops_of([(OP_REDUCE, int(Side.BID), 100, 2, 0)]))
        assert books.levels(0, Side.BID) == [(100, 3)]
        books.step(ops_of([(OP_REDUCE, int(Side.BID), 100, 99, 0)]))
        assert books.levels(0, Side.BID) == []

    def test_depth_exhaustion_raises(self):
        books = BatchedBooks(1, depth=2)
        books.step(ops_of([(OP_LIMIT, int(Side.BID), 100, 1, 0)]))
        books.step(ops_of([(OP_LIMIT, int(Side.BID), 99, 1, 0)]))
        with pytest.raises(OrderBookError, match="depth"):
            books.step(ops_of([(OP_LIMIT, int(Side.BID), 98, 1, 0)]))

    def test_shape_validation(self):
        books = BatchedBooks(2)
        with pytest.raises(OrderBookError, match="shape"):
            books.step(ops_of([(OP_NOP, 0, 0, 0, 0)]))
        with pytest.raises(OrderBookError):
            BatchedBooks(0)


class TestCrossCheck:
    def test_levels_match_single_book_engines(self):
        """300 random steps x 8 books == 8 independent ArrayMatchingEngines."""
        n_books, n_steps = 8, 300
        rng = np.random.default_rng(17)
        books = BatchedBooks(n_books)
        engines = [ArrayMatchingEngine() for _ in range(n_books)]
        next_id = 1
        for _ in range(n_steps):
            rows = random_ops(rng, n_books)
            books.step(ops_of(rows))
            for book_idx, (kind, side, price, qty, tif) in enumerate(rows):
                engine = engines[book_idx]
                if kind in (OP_LIMIT, OP_MARKET):
                    engine.submit(
                        "B",
                        Order(
                            side=Side(side),
                            price=price if kind == OP_LIMIT else 1,
                            quantity=qty,
                            order_id=next_id,
                            order_type=(
                                OrderType.LIMIT if kind == OP_LIMIT else OrderType.MARKET
                            ),
                            tif=TimeInForce(tif),
                        ),
                        0,
                    )
                    next_id += 1
                elif kind == OP_REDUCE:
                    # Aggregate cancel: trim FIFO-last orders at the level
                    # until `qty` is removed (same aggregate effect).
                    self._reduce(engine, Side(side), price, qty)
            assert not books.is_crossed().any()
            for book_idx in range(n_books):
                book = engines[book_idx].book("B")
                assert books.levels(book_idx, Side.BID) == book.bids.top(books.depth)
                assert books.levels(book_idx, Side.ASK) == book.asks.top(books.depth)

    @staticmethod
    def _reduce(engine, side, price, qty):
        """Mirror OP_REDUCE on a single-book engine via cancel/replace."""
        book = engine.book("B")
        arr_side = book.side(side)
        idx = arr_side.find(price)
        if idx < 0:
            return
        remaining = qty
        # Walk FIFO from the back (newest first) like an aggregate cancel
        # that does not disturb resting priority of survivors.
        while remaining > 0 and (idx := arr_side.find(price)) >= 0:
            slot = int(arr_side.tail[idx])
            order = book.order_at(slot)
            if order.remaining <= remaining:
                remaining -= order.remaining
                engine.cancel("B", order.order_id, 0)
            else:
                engine.replace(
                    "B", order.order_id, 0, new_quantity=order.remaining - remaining
                )
                remaining = 0


class TestScaling:
    def test_per_book_cost_scales_sublinearly(self):
        """Stepping 64 books costs far less than 64x stepping one book."""

        def run(n_books, n_steps=60):
            rng = np.random.default_rng(5)
            books = BatchedBooks(n_books)
            ops = [ops_of(random_ops(rng, n_books)) for _ in range(n_steps)]
            start = time.perf_counter()
            for op in ops:
                books.step(op)
            return (time.perf_counter() - start) / n_steps

        single = min(run(1) for _ in range(3))
        wide = min(run(64) for _ in range(3))
        per_book_ratio = (wide / 64) / single
        # Vectorization amortizes: adding books must cost well under the
        # linear per-book price (observed ~0.05; gate loosely at 0.5).
        assert per_book_ratio < 0.5, per_book_ratio
