"""Property tests for depth snapshots and the offload queue."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.lob import DepthSnapshot
from repro.pipeline import OffloadEngine


levels = st.lists(
    st.tuples(st.integers(1, 100_000), st.integers(1, 10_000)),
    min_size=0,
    max_size=10,
)


def normalise(bids, asks):
    """Make sides consistent: bids descending, asks ascending, uncrossed."""
    bids = sorted(set(bids), key=lambda x: -x[0])
    asks = sorted(set(asks), key=lambda x: x[0])
    if bids and asks and bids[0][0] >= asks[0][0]:
        asks = [(p + bids[0][0], v) for p, v in asks]
    return tuple(bids), tuple(asks)


class TestSnapshotProperties:
    @given(levels, levels)
    @settings(max_examples=200, deadline=None)
    def test_feature_vector_always_well_formed(self, raw_bids, raw_asks):
        bids, asks = normalise(raw_bids, raw_asks)
        snap = DepthSnapshot(
            symbol="S", timestamp=0, depth=10, bids=bids, asks=asks
        )
        vec = snap.feature_vector()
        assert vec.shape == (40,)
        assert np.isfinite(vec).all()
        # Present levels are embedded verbatim.
        for i, (price, vol) in enumerate(asks[:10]):
            assert vec[4 * i] == price
            assert vec[4 * i + 1] == vol
        for i, (price, vol) in enumerate(bids[:10]):
            assert vec[4 * i + 2] == price
            assert vec[4 * i + 3] == vol

    @given(levels, levels)
    @settings(max_examples=200, deadline=None)
    def test_padded_prices_monotone(self, raw_bids, raw_asks):
        """Ask price padding ascends; bid price padding descends."""
        bids, asks = normalise(raw_bids, raw_asks)
        snap = DepthSnapshot(symbol="S", timestamp=0, depth=10, bids=bids, asks=asks)
        vec = snap.feature_vector()
        ask_prices = vec[0::4]
        bid_prices = vec[2::4]
        assert (np.diff(ask_prices) >= 0).all()
        assert (np.diff(bid_prices) <= 0).all()

    @given(st.integers(0, 1_000), st.integers(0, 1_000))
    @settings(max_examples=100, deadline=None)
    def test_imbalance_bounded(self, bid_vol, ask_vol):
        bids = ((100, bid_vol),) if bid_vol else ()
        asks = ((101, ask_vol),) if ask_vol else ()
        snap = DepthSnapshot(symbol="S", timestamp=0, depth=10, bids=bids, asks=asks)
        assert -1.0 <= snap.imbalance() <= 1.0


class TestOffloadQueueProperties:
    @given(
        st.lists(
            st.tuples(st.sampled_from(["tick", "pop", "drop", "stale"]),
                      st.integers(1, 4)),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_queue_accounting_invariant(self, ops):
        """created == pending + popped + dropped at all times."""
        engine = OffloadEngine(window=1, max_pending=8)
        snap = DepthSnapshot(
            symbol="S", timestamp=0, depth=10, bids=((100, 1),), asks=((101, 1),)
        )
        created = popped = 0
        now = 0
        for op, arg in ops:
            now += 10
            if op == "tick":
                for __ in range(arg):
                    if engine.on_tick(snap, now, now + 50) is not None:
                        created += 1
            elif op == "pop":
                popped += len(engine.pop_batch(arg))
            elif op == "drop":
                if engine.drop_oldest() is not None:
                    pass
            else:
                engine.drop_stale(now)
            assert (
                engine.pending_count() + popped + engine.total_dropped == created
            )
            assert engine.pending_count() <= 8
