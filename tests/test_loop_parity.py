"""Fast-loop vs reference-loop parity: byte-identical back-tests.

The fast event loop (``REPRO_FAST_LOOP``, default on) restructures the
simulator — batched arrival admission, decision memoization, lazy query
materialisation, change-driven power sampling — but is contractually a
pure optimisation: every :class:`RunResult` field, decision-log event,
telemetry counter and query trace must match the reference loop bit for
bit.  These tests pin that contract over a seeded matrix of scheduling
schemes, traffic presets, system profiles, queue-overflow pressure, a
deterministic fault plan, and every trace level.

Regression anchor: a saturated single accelerator under DVFS scheduling,
where the reference loop re-runs the (non-exhaustive) Algorithm-2
redistribution at every arrival — the batched-admission drain must not
swallow those passes (see the drain gate in ``_run_lighttrader_fast``).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.accelerator.power import DVFSTable
from repro.baselines.profiles import fpga_profile, gpu_profile, lighttrader_profile
from repro.core.scheduler import WorkloadScheduler
from repro.faults.plan import seeded_plan
from repro.metrics import IMPL_PREFIX, MetricRegistry
from repro.sim.backtest import Backtester, SimConfig
from repro.sim.workload import Regime, TrafficSpec, synthetic_workload
from repro.telemetry import Telemetry

# Sustained micro-burst traffic: keeps every device saturated so the
# batched-admission drain and the redistribution tail interact.
BURST = TrafficSpec(
    calm=Regime("calm", rate_hz=800.0, mean_dwell_s=1.0),
    episodes=(
        Regime("burst", rate_hz=40_000.0, mean_dwell_s=0.03),
        Regime("active", rate_hz=9_000.0, mean_dwell_s=0.08),
    ),
    episode_weights=(0.5, 0.5),
)

_SCHEME_FLAGS = {
    "baseline": (False, False),
    "ws": (True, False),
    "ds": (False, True),
    "ws+ds": (True, True),
}


def _workload(preset: str):
    if preset == "burst":
        return synthetic_workload(duration_s=1.5, spec=BURST, seed=42)
    return synthetic_workload(duration_s=2.0, spec=TrafficSpec(), seed=42)


def _run_pair(workload, profile, config, faults=None, level=2):
    """One back-test per loop; returns ((result, telemetry, metrics), ...)."""
    out = []
    for fast in (False, True):
        telemetry = Telemetry(keep_traces=True, keep_events=True, level=level)
        metrics = MetricRegistry()
        result = Backtester(
            workload, profile, config, telemetry=telemetry, faults=faults,
            fast_loop=fast, metrics=metrics,
        ).run()
        telemetry.close()
        out.append((result, telemetry, metrics))
    return out


def _assert_parity(workload, profile, config, faults=None, level=2):
    (ref, tel_ref, met_ref), (fast, tel_fast, met_fast) = _run_pair(
        workload, profile, config, faults=faults, level=level
    )
    assert dataclasses.asdict(fast) == dataclasses.asdict(ref)
    assert tel_fast.decisions.events == tel_ref.decisions.events
    assert tel_fast.registry.snapshot() == tel_ref.registry.snapshot()
    traces_ref = [t.to_event() for t in (tel_ref.traces or [])]
    traces_fast = [t.to_event() for t in (tel_fast.traces or [])]
    assert traces_fast == traces_ref
    # MetricRegistry parity: every public metric matches; only names
    # under the impl. prefix (memo/sweep/redistribute bookkeeping) may
    # legitimately differ between the two pumps.
    snap_fast = met_fast.public_snapshot()
    assert snap_fast == met_ref.public_snapshot()
    assert snap_fast["counters"], "registry saw no counter traffic"
    assert not any(
        name.startswith(IMPL_PREFIX)
        for section in snap_fast.values()
        for name in section
    )
    return ref


class TestSchemePresetMatrix:
    @pytest.mark.parametrize("preset", ["calm", "burst"])
    @pytest.mark.parametrize("scheme", sorted(_SCHEME_FLAGS))
    def test_lighttrader_schemes(self, preset, scheme):
        ws, ds = _SCHEME_FLAGS[scheme]
        config = SimConfig(
            workload_scheduling=ws,
            dvfs_scheduling=ds,
            n_accelerators=2,
            power_condition="limited" if preset == "burst" else "sufficient",
        )
        result = _assert_parity(_workload(preset), lighttrader_profile(), config)
        assert result.n_queries > 0

    @pytest.mark.parametrize("preset", ["calm", "burst"])
    def test_fixed_profiles(self, preset):
        workload = _workload(preset)
        _assert_parity(workload, gpu_profile(), SimConfig(n_accelerators=2))
        _assert_parity(workload, fpga_profile(), SimConfig())

    def test_single_device_redistribute_drain(self):
        # Regression: one saturated accelerator under ws+ds.  Algorithm 2
        # boosts the in-flight batch one step per event, so the reference
        # keeps boosting across consecutive arrivals; a batched drain
        # that swallows those arrival events loses boosts and the miss
        # rate drifts.  This configuration diverged before the drain was
        # gated on redistribution convergence.
        config = SimConfig(
            model="vanilla_cnn",
            n_accelerators=1,
            workload_scheduling=True,
            dvfs_scheduling=True,
        )
        _assert_parity(_workload("burst"), lighttrader_profile(), config)


class TestPressureAndFaults:
    def test_overflow_pressure(self):
        workload = synthetic_workload(duration_s=1.0, spec=BURST, seed=7)
        _assert_parity(
            workload,
            lighttrader_profile(),
            SimConfig(
                workload_scheduling=True, max_pending=8, power_condition="limited"
            ),
        )
        _assert_parity(workload, gpu_profile(), SimConfig(max_pending=4))

    @pytest.mark.parametrize("scheme", sorted(_SCHEME_FLAGS))
    def test_seeded_fault_plan(self, scheme):
        workload = synthetic_workload(duration_s=2.0, seed=11)
        plan = seeded_plan(
            duration_s=2.0,
            n_accelerators=2,
            n_ticks=len(workload),
            seed=3,
            device_failure_rate_hz=1.5,
            failure_downtime_s=0.3,
            corruption_rate_hz=1.0,
            throttle_rate_hz=1.5,
            throttle_duration_s=0.2,
            stall_rate_hz=1.0,
            stall_duration_us=200.0,
            duplicate_prob=0.01,
            reorder_prob=0.01,
        )
        ws, ds = _SCHEME_FLAGS[scheme]
        config = SimConfig(
            workload_scheduling=ws, dvfs_scheduling=ds, n_accelerators=2
        )
        _assert_parity(workload, lighttrader_profile(), config, faults=plan)

    @pytest.mark.parametrize("level", [0, 1])
    def test_trace_levels(self, level):
        workload = synthetic_workload(duration_s=1.5, seed=13)
        config = SimConfig(
            workload_scheduling=True, dvfs_scheduling=True, n_accelerators=2
        )
        _assert_parity(workload, lighttrader_profile(), config, level=level)
        _assert_parity(workload, gpu_profile(), SimConfig(), level=level)


class TestDecisionMemo:
    """decide_memo() must be a transparent cache over decide()."""

    def _situations(self, n=250, seed=5):
        rng = np.random.default_rng(seed)
        budgets = (7.5, 22.0, 45.0)  # few distinct values so the memo hits
        floors = (0.0, 1.2e9, 2.0e9)
        caps = (None, None, 1.8e9)
        out = []
        now = 1_000_000
        for _ in range(n):
            depth = int(rng.integers(1, 17))
            if rng.random() < 0.25:
                # Tight deadlines: outside the memo's slack regime, so
                # the fallback-to-decide path is exercised too.
                slack = rng.integers(1_000, 50_000, size=depth)
            else:
                slack = rng.integers(5_000_000, 50_000_000, size=depth)
            deadlines = [int(now + s) for s in np.sort(slack)[::-1]]
            out.append(
                (
                    now,
                    deadlines,
                    budgets[int(rng.integers(len(budgets)))],
                    floors[int(rng.integers(len(floors)))],
                    caps[int(rng.integers(len(caps)))],
                )
            )
            now += int(rng.integers(1_000, 200_000))
        return out

    def test_memo_matches_decide(self):
        profile = lighttrader_profile()
        table = DVFSTable(cap_hz=2.2e9)
        memoized = WorkloadScheduler(profile, table)
        plain = WorkloadScheduler(profile, table)
        for now, deadlines, budget, floor, cap in self._situations():
            got = memoized.decide_memo(
                "deeplob", now, deadlines, budget,
                floor_freq_hz=floor, cap_freq_hz=cap,
            )
            want = plain.decide(
                "deeplob", now, deadlines, budget,
                floor_freq_hz=floor, cap_freq_hz=cap,
            )
            assert got == want
        assert memoized.memo_stats["hits"] > 0
        assert memoized.memo_stats["misses"] > 0

    def test_invalidation_refills_with_identical_decisions(self):
        # The fast loop flushes the memo on every FAULT event (failure,
        # recovery, throttle: any of them voids the cached floor/cap/
        # budget context).  Decisions after a flush must re-derive to the
        # same values — the memo carries no state beyond pure caching.
        profile = lighttrader_profile()
        table = DVFSTable(cap_hz=2.2e9)
        scheduler = WorkloadScheduler(profile, table)
        now = 10_000_000
        deadlines = [now + 40_000_000] * 4
        first = scheduler.decide_memo("deeplob", now, deadlines, 30.0)
        again = scheduler.decide_memo("deeplob", now + 1_000, deadlines, 30.0)
        assert scheduler.memo_stats["hits"] == 1
        assert again == first

        scheduler.invalidate_memo()
        assert not scheduler._memo
        refilled = scheduler.decide_memo("deeplob", now + 2_000, deadlines, 30.0)
        assert refilled == first
        assert scheduler.memo_stats["misses"] == 2
