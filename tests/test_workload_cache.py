"""Workload cache: memory hits, on-disk round-trips, key separation."""

import numpy as np
import pytest

from repro.sim.workload import (
    FixedDeadline,
    OpportunityDeadline,
    synthetic_workload,
)
from repro.sim.workload_cache import (
    WORKLOAD_CACHE_ENV,
    cached_synthetic_workload,
    clear_workload_cache,
    workload_cache_key,
)

DURATION = 2.0


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_workload_cache()
    yield
    clear_workload_cache()


def test_cache_matches_direct_generation():
    cached = cached_synthetic_workload(DURATION, seed=5, name="headline")
    direct = synthetic_workload(DURATION, policy=OpportunityDeadline(), seed=5, name="headline")
    np.testing.assert_array_equal(cached.timestamps, direct.timestamps)
    np.testing.assert_array_equal(cached.deadlines, direct.deadlines)
    assert cached.name == direct.name


def test_memory_hit_returns_same_object():
    first = cached_synthetic_workload(DURATION, seed=5)
    second = cached_synthetic_workload(DURATION, seed=5)
    assert second is first  # no regeneration, no copy


def test_key_separates_parameterisations():
    base = cached_synthetic_workload(DURATION, seed=5)
    other_seed = cached_synthetic_workload(DURATION, seed=6)
    other_policy = cached_synthetic_workload(
        DURATION, policy=FixedDeadline(budget_ns=5_000_000), seed=5
    )
    assert other_seed is not base
    assert other_policy is not base
    assert not np.array_equal(other_seed.deadlines, base.deadlines)
    assert not np.array_equal(other_policy.deadlines, base.deadlines)


def test_key_is_stable_and_distinct():
    key = workload_cache_key(DURATION, _spec(), OpportunityDeadline(), 5, "headline")
    again = workload_cache_key(DURATION, _spec(), OpportunityDeadline(), 5, "headline")
    other = workload_cache_key(DURATION, _spec(), OpportunityDeadline(), 6, "headline")
    assert key == again
    assert key != other


def _spec():
    from repro.sim.workload import DEFAULT_TRAFFIC

    return DEFAULT_TRAFFIC


def test_disk_round_trip(tmp_path, monkeypatch):
    monkeypatch.setenv(WORKLOAD_CACHE_ENV, str(tmp_path))
    first = cached_synthetic_workload(DURATION, seed=9, name="disk")
    files = list(tmp_path.glob("disk-*.npz"))
    assert len(files) == 1

    # A fresh process is simulated by dropping the memory level only.
    clear_workload_cache()
    second = cached_synthetic_workload(DURATION, seed=9, name="disk")
    assert second is not first
    np.testing.assert_array_equal(second.timestamps, first.timestamps)
    np.testing.assert_array_equal(second.deadlines, first.deadlines)
    if first.regimes is not None:
        np.testing.assert_array_equal(second.regimes, first.regimes)


def test_corrupt_disk_entry_falls_back(tmp_path, monkeypatch):
    monkeypatch.setenv(WORKLOAD_CACHE_ENV, str(tmp_path))
    first = cached_synthetic_workload(DURATION, seed=9, name="disk")
    (path,) = tmp_path.glob("disk-*.npz")
    path.write_bytes(b"not an npz")
    clear_workload_cache()
    regenerated = cached_synthetic_workload(DURATION, seed=9, name="disk")
    np.testing.assert_array_equal(regenerated.timestamps, first.timestamps)


def test_disk_cache_off_by_default(tmp_path, monkeypatch):
    monkeypatch.delenv(WORKLOAD_CACHE_ENV, raising=False)
    cached_synthetic_workload(DURATION, seed=9, name="nodisk")
    assert list(tmp_path.iterdir()) == []
