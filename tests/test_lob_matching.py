"""Unit tests for the matching engine semantics.

Every test runs against both book engines — the object-per-order
reference and the struct-of-arrays implementation — so the semantics
pinned here are pinned for the pair (the bit-exactness contract of
``REPRO_LOB_ENGINE``).
"""

import pytest

from repro.errors import MatchingError
from repro.lob import (
    ArrayMatchingEngine,
    MatchingEngine,
    Order,
    OrderType,
    Side,
    TimeInForce,
    TradeTick,
    UpdateAction,
    BookUpdate,
)


@pytest.fixture(params=["reference", "array"])
def engine(request):
    if request.param == "reference":
        return MatchingEngine()
    return ArrayMatchingEngine()


def limit(side, price, quantity, **kwargs):
    return Order(side=side, price=price, quantity=quantity, **kwargs)


def volume_at(side_obj, price):
    """Resting volume at ``price`` on either engine's book side."""
    if hasattr(side_obj, "level_at"):  # reference BookSide
        level = side_obj.level_at(price)
        return 0 if level is None else level.volume
    idx = side_obj.find(price)
    return 0 if idx < 0 else int(side_obj.volume[idx])


def seed_book(engine, symbol="ES"):
    """Asks at 102(5), 103(5); bids at 100(5), 99(5)."""
    engine.submit(symbol, limit(Side.ASK, 102, 5), 0)
    engine.submit(symbol, limit(Side.ASK, 103, 5), 0)
    engine.submit(symbol, limit(Side.BID, 100, 5), 0)
    engine.submit(symbol, limit(Side.BID, 99, 5), 0)


class TestBasicMatching:
    def test_resting_order_publishes_new_level(self, engine):
        result = engine.submit("ES", limit(Side.BID, 100, 5), 10)
        assert result.accepted
        assert not result.fills
        updates = [e for e in result.events if isinstance(e, BookUpdate)]
        assert len(updates) == 1
        assert updates[0].action is UpdateAction.NEW
        assert updates[0].volume == 5

    def test_crossing_order_fills_at_maker_price(self, engine):
        seed_book(engine)
        result = engine.submit("ES", limit(Side.BID, 103, 3), 20)
        assert result.filled_quantity == 3
        assert result.fills[0].price == 102  # maker's price, not 103

    def test_fill_walks_levels_best_first(self, engine):
        seed_book(engine)
        result = engine.submit("ES", limit(Side.BID, 103, 8), 20)
        assert [f.price for f in result.fills] == [102, 103]
        assert [f.quantity for f in result.fills] == [5, 3]

    def test_time_priority_within_level(self, engine):
        first = limit(Side.ASK, 102, 2, owner="first")
        second = limit(Side.ASK, 102, 2, owner="second")
        engine.submit("ES", first, 0)
        engine.submit("ES", second, 1)
        result = engine.submit("ES", limit(Side.BID, 102, 3), 2)
        assert result.fills[0].maker_owner == "first"
        assert result.fills[0].quantity == 2
        assert result.fills[1].maker_owner == "second"
        assert result.fills[1].quantity == 1

    def test_partial_fill_rests_remainder(self, engine):
        seed_book(engine)
        result = engine.submit("ES", limit(Side.BID, 102, 8), 20)
        assert result.filled_quantity == 5
        book = engine.book("ES")
        assert book.best_bid == 102
        assert volume_at(book.bids, 102) == 3

    def test_book_never_crossed_after_matching(self, engine):
        seed_book(engine)
        engine.submit("ES", limit(Side.BID, 103, 12), 20)
        assert not engine.book("ES").is_crossed()

    def test_trade_tick_emitted_per_level(self, engine):
        seed_book(engine)
        result = engine.submit("ES", limit(Side.BID, 103, 8), 20)
        trades = [e for e in result.events if isinstance(e, TradeTick)]
        assert [(t.price, t.quantity) for t in trades] == [(102, 5), (103, 3)]
        assert all(t.aggressor_side is Side.BID for t in trades)

    def test_volume_conserved(self, engine):
        seed_book(engine)
        book = engine.book("ES")
        before = book.asks.total_volume()
        result = engine.submit("ES", limit(Side.BID, 103, 7), 20)
        after = book.asks.total_volume()
        assert before - after == result.filled_quantity == 7


class TestMarketOrders:
    def test_market_order_sweeps(self, engine):
        seed_book(engine)
        order = Order(side=Side.BID, price=1, quantity=10, order_type=OrderType.MARKET)
        result = engine.submit("ES", order, 5)
        assert result.filled_quantity == 10
        assert engine.book("ES").asks.is_empty

    def test_market_remainder_discarded(self, engine):
        seed_book(engine)
        order = Order(side=Side.BID, price=1, quantity=99, order_type=OrderType.MARKET)
        result = engine.submit("ES", order, 5)
        assert result.filled_quantity == 10
        assert order.remaining == 89
        # Nothing rests on the bid side beyond the seeded orders.
        assert engine.book("ES").best_bid == 100


class TestTimeInForce:
    def test_ioc_remainder_not_rested(self, engine):
        seed_book(engine)
        order = limit(Side.BID, 102, 9, tif=TimeInForce.IOC)
        result = engine.submit("ES", order, 5)
        assert result.filled_quantity == 5
        assert engine.book("ES").best_bid == 100  # remainder discarded

    def test_fok_rejected_when_unfillable(self, engine):
        seed_book(engine)
        order = limit(Side.BID, 102, 9, tif=TimeInForce.FOK)
        result = engine.submit("ES", order, 5)
        assert not result.accepted
        assert not result.fills
        # Book untouched.
        assert volume_at(engine.book("ES").asks, 102) == 5

    def test_fok_fills_when_fully_fillable(self, engine):
        seed_book(engine)
        order = limit(Side.BID, 103, 9, tif=TimeInForce.FOK)
        result = engine.submit("ES", order, 5)
        assert result.accepted
        assert result.filled_quantity == 9

    def test_market_fok_rejected_when_book_too_thin(self, engine):
        # Regression: MARKET+FOK used to degrade silently to IOC and
        # partial-fill.  A market FOK for more than the whole opposite
        # side must reject and leave the book untouched.
        seed_book(engine)
        order = Order(
            side=Side.BID,
            price=1,
            quantity=11,  # asks hold 10 in total
            order_type=OrderType.MARKET,
            tif=TimeInForce.FOK,
        )
        result = engine.submit("ES", order, 5)
        assert not result.accepted
        assert not result.fills
        assert order.remaining == 11
        assert engine.book("ES").asks.total_volume() == 10

    def test_market_fok_sweeps_when_fully_fillable(self, engine):
        seed_book(engine)
        order = Order(
            side=Side.BID,
            price=1,
            quantity=10,
            order_type=OrderType.MARKET,
            tif=TimeInForce.FOK,
        )
        result = engine.submit("ES", order, 5)
        assert result.accepted
        assert result.filled_quantity == 10
        assert engine.book("ES").asks.is_empty


class TestCancelReplace:
    def test_cancel_removes_and_publishes_delete(self, engine):
        order = limit(Side.BID, 100, 5)
        engine.submit("ES", order, 0)
        result = engine.cancel("ES", order.order_id, 1)
        assert order.order_id not in engine.book("ES")
        updates = [e for e in result.events if isinstance(e, BookUpdate)]
        assert updates[0].action is UpdateAction.DELETE

    def test_cancel_partial_level_publishes_change(self, engine):
        a = limit(Side.BID, 100, 5)
        b = limit(Side.BID, 100, 3)
        engine.submit("ES", a, 0)
        engine.submit("ES", b, 0)
        result = engine.cancel("ES", a.order_id, 1)
        updates = [e for e in result.events if isinstance(e, BookUpdate)]
        assert updates[0].action is UpdateAction.CHANGE
        assert updates[0].volume == 3

    def test_replace_price_loses_priority(self, engine):
        a = limit(Side.ASK, 102, 5, owner="a")
        b = limit(Side.ASK, 102, 5, owner="b")
        engine.submit("ES", a, 0)
        engine.submit("ES", b, 1)
        # Move a away and back: a should now queue behind b.
        engine.replace("ES", a.order_id, 2, new_price=103)
        engine.replace("ES", a.order_id, 3, new_price=102)
        result = engine.submit("ES", limit(Side.BID, 102, 5), 4)
        assert result.fills[0].maker_owner == "b"

    def test_replace_can_cross(self, engine):
        seed_book(engine)
        order = limit(Side.BID, 100, 5)
        engine.submit("ES", order, 0)
        result = engine.replace("ES", order.order_id, 1, new_price=102)
        assert result.filled_quantity == 5

    def test_replace_nothing_raises(self, engine):
        order = limit(Side.BID, 100, 5)
        engine.submit("ES", order, 0)
        with pytest.raises(MatchingError):
            engine.replace("ES", order.order_id, 1)

    def test_replace_quantity_only(self, engine):
        order = limit(Side.BID, 100, 5)
        engine.submit("ES", order, 0)
        engine.replace("ES", order.order_id, 1, new_quantity=9)
        assert volume_at(engine.book("ES").bids, 100) == 9

    def test_replace_of_fok_order_fills_when_fillable(self, engine):
        seed_book(engine)
        fok = limit(Side.BID, 98, 4, tif=TimeInForce.FOK, owner="planted")
        engine.book("ES").insert(fok)
        # Asks hold 10 through 103, so 9 at 103 fills completely.
        result = engine.replace("ES", fok.order_id, 1, new_price=103, new_quantity=9)
        assert result.accepted
        assert result.filled_quantity == 9

    def test_replace_of_fok_order_rejects_when_unfillable(self, engine):
        # FOK orders never rest via submit, so plant one directly on the
        # book (both books expose insert()) and replace it through the
        # engine: the resubmission re-runs the full-fill check and
        # rejects, leaving the order cancelled and the asks untouched.
        seed_book(engine)
        fok = limit(Side.BID, 98, 4, tif=TimeInForce.FOK, owner="planted")
        engine.book("ES").insert(fok)
        result = engine.replace("ES", fok.order_id, 1, new_price=102, new_quantity=9)
        assert not result.accepted
        assert not result.fills
        assert fok.order_id not in engine.book("ES")
        assert engine.book("ES").asks.total_volume() == 10


class TestSequencing:
    def test_event_sequence_monotone(self, engine):
        seed_book(engine)
        result = engine.submit("ES", limit(Side.BID, 103, 8), 20)
        seqs = [e.sequence for e in result.events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_multiple_symbols_isolated(self, engine):
        engine.submit("ES", limit(Side.BID, 100, 5), 0)
        engine.submit("NQ", limit(Side.ASK, 200, 5), 0)
        assert engine.book("ES").best_ask is None
        assert engine.book("NQ").best_bid is None
        assert set(engine.symbols) == {"ES", "NQ"}
