"""Unit tests for individual NN layers."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.nn.layers import (
    CausalConv1D,
    Conv2D,
    Dense,
    Flatten,
    InceptionModule,
    LSTM,
    LayerNorm,
    LeakyReLU,
    MaxPool2D,
    MultiHeadSelfAttention,
    PositionalEncoding,
    ReLU,
    Softmax,
    TakeLast,
    ToSequence,
    TransformerBlock,
)

RNG = np.random.default_rng(42)


def build(layer, shape):
    layer.build(shape, np.random.default_rng(0))
    return layer


def batch(shape, n=2, seed=1):
    return np.random.default_rng(seed).standard_normal((n, *shape)).astype(np.float32)


class TestDense:
    def test_shape_and_value(self):
        layer = build(Dense(4), (3,))
        layer.params["weight"][:] = np.eye(3, 4)
        layer.params["bias"][:] = 1.0
        out = layer.forward(np.array([[1.0, 2.0, 3.0]], dtype=np.float32))
        np.testing.assert_allclose(out, [[2.0, 3.0, 4.0, 1.0]])

    def test_timedistributed(self):
        layer = build(Dense(5), (7, 3))
        assert layer.output_shape == (7, 5)
        assert layer.forward(batch((7, 3))).shape == (2, 7, 5)

    def test_macs(self):
        assert build(Dense(4), (3,)).macs() == 12
        assert build(Dense(4), (10, 3)).macs() == 120

    def test_bad_rank_rejected(self):
        with pytest.raises(ModelError):
            build(Dense(4), (2, 3, 4))

    def test_wrong_input_shape_rejected(self):
        layer = build(Dense(4), (3,))
        with pytest.raises(ModelError):
            layer.forward(batch((5,)))

    def test_use_before_build_rejected(self):
        with pytest.raises(ModelError):
            Dense(4).forward(batch((3,)))

    def test_double_build_rejected(self):
        layer = build(Dense(4), (3,))
        with pytest.raises(ModelError):
            layer.build((3,), np.random.default_rng(0))


class TestConv2D:
    def test_valid_shape(self):
        layer = build(Conv2D(8, (4, 40), padding="valid"), (1, 100, 40))
        assert layer.output_shape == (8, 97, 1)

    def test_same_shape(self):
        layer = build(Conv2D(8, (4, 1), padding="same"), (3, 100, 40))
        assert layer.output_shape == (8, 100, 40)

    def test_strided_shape(self):
        layer = build(Conv2D(8, (1, 2), stride=(1, 2), padding="valid"), (1, 100, 40))
        assert layer.output_shape == (8, 100, 20)

    def test_identity_kernel(self):
        layer = build(Conv2D(1, (1, 1), padding="valid"), (1, 4, 4))
        layer.params["weight"][:] = 1.0
        x = batch((1, 4, 4))
        np.testing.assert_allclose(layer.forward(x), x, rtol=1e-5)

    def test_matches_naive_convolution(self):
        layer = build(Conv2D(2, (3, 3), padding="valid"), (2, 6, 5))
        x = batch((2, 6, 5), n=1)
        out = layer.forward(x)
        w, b = layer.params["weight"], layer.params["bias"]
        naive = np.zeros_like(out)
        for f in range(2):
            for i in range(4):
                for j in range(3):
                    patch = x[0, :, i : i + 3, j : j + 3]
                    naive[0, f, i, j] = (patch * w[f]).sum() + b[f]
        np.testing.assert_allclose(out, naive, rtol=1e-4, atol=1e-5)

    def test_macs_formula(self):
        layer = build(Conv2D(8, (3, 3), padding="same"), (4, 10, 10))
        assert layer.macs() == 8 * 10 * 10 * 4 * 3 * 3

    def test_kernel_larger_than_input_rejected(self):
        with pytest.raises(ModelError):
            build(Conv2D(8, (200, 1), padding="valid"), (1, 100, 40))


class TestCausalConv1D:
    def test_causality(self):
        """Output at time t must not depend on inputs after t."""
        layer = build(CausalConv1D(4, kernel_size=2, dilation=4), (20, 3))
        x = batch((20, 3), n=1)
        base = layer.forward(x)
        x2 = x.copy()
        x2[0, 10:, :] += 100.0  # perturb the future
        out2 = layer.forward(x2)
        np.testing.assert_allclose(out2[0, :10], base[0, :10], rtol=1e-5)

    def test_shape_preserved(self):
        layer = build(CausalConv1D(7, 2, dilation=8), (100, 40))
        assert layer.output_shape == (100, 7)

    def test_dilation_reach(self):
        """With kernel 2 and dilation d, output at t sees input t-d."""
        layer = build(CausalConv1D(1, 2, dilation=3), (10, 1))
        layer.params["weight"][:] = 0.0
        layer.params["weight"][0, 0, 0] = 1.0  # tap at t-3 only
        x = np.zeros((1, 10, 1), dtype=np.float32)
        x[0, 2, 0] = 5.0
        out = layer.forward(x)
        assert out[0, 5, 0] == pytest.approx(5.0)
        assert abs(out[0, 4, 0]) < 1e-6


class TestPoolingAndShape:
    def test_maxpool_values(self):
        layer = build(MaxPool2D((2, 2)), (1, 4, 4))
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = layer.forward(x)
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_too_large_rejected(self):
        with pytest.raises(ModelError):
            build(MaxPool2D((8, 1)), (1, 4, 4))

    def test_flatten(self):
        layer = build(Flatten(), (3, 4, 5))
        assert layer.output_shape == (60,)
        assert layer.forward(batch((3, 4, 5))).shape == (2, 60)

    def test_to_sequence(self):
        layer = build(ToSequence(), (16, 100, 1))
        x = batch((16, 100, 1), n=1)
        out = layer.forward(x)
        assert out.shape == (1, 100, 16)
        np.testing.assert_allclose(out[0, 7, :], x[0, :, 7, 0])

    def test_take_last(self):
        layer = build(TakeLast(), (9, 5))
        x = batch((9, 5))
        np.testing.assert_allclose(layer.forward(x), x[:, -1, :])


class TestActivations:
    def test_relu(self):
        layer = build(ReLU(), (4,))
        out = layer.forward(np.array([[-1.0, 0.0, 2.0, -3.0]], dtype=np.float32))
        np.testing.assert_allclose(out, [[0, 0, 2, 0]])

    def test_leaky_relu(self):
        layer = build(LeakyReLU(alpha=0.1), (2,))
        out = layer.forward(np.array([[-10.0, 10.0]], dtype=np.float32))
        np.testing.assert_allclose(out, [[-1.0, 10.0]])

    def test_softmax_rows_sum_to_one(self):
        layer = build(Softmax(), (5,))
        out = layer.forward(batch((5,), n=4))
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(4), rtol=1e-6)
        assert (out >= 0).all()

    def test_softmax_stability(self):
        layer = build(Softmax(), (3,))
        out = layer.forward(np.array([[1000.0, 1000.0, -1000.0]], dtype=np.float32))
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out[0, :2], [0.5, 0.5], rtol=1e-5)


class TestNormalisation:
    def test_layernorm_zero_mean_unit_var(self):
        layer = build(LayerNorm(), (32,))
        out = layer.forward(batch((32,), n=3) * 10 + 5)
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-5)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, rtol=1e-2)


class TestLSTM:
    def test_output_shapes(self):
        assert build(LSTM(8), (10, 4)).output_shape == (8,)
        assert build(LSTM(8, return_sequences=True), (10, 4)).output_shape == (10, 8)

    def test_sequences_last_equals_vector_output(self):
        seq = build(LSTM(8, return_sequences=True, name="a"), (10, 4))
        last = LSTM(8, return_sequences=False, name="b")
        last.build((10, 4), np.random.default_rng(0))
        # Copy weights so both compute the same recurrence.
        for key in seq.params:
            last.params[key][:] = seq.params[key]
        x = batch((10, 4))
        np.testing.assert_allclose(seq.forward(x)[:, -1, :], last.forward(x), rtol=1e-5)

    def test_state_bounded(self):
        layer = build(LSTM(16), (50, 8))
        out = layer.forward(batch((50, 8)) * 100)
        assert (np.abs(out) <= 1.0 + 1e-6).all()  # h = o * tanh(c)

    def test_macs(self):
        layer = build(LSTM(8), (10, 4))
        assert layer.macs() == 10 * (4 * 32 + 8 * 32)


class TestAttention:
    def test_mhsa_shape_preserved(self):
        layer = build(MultiHeadSelfAttention(heads=2), (12, 8))
        assert layer.forward(batch((12, 8))).shape == (2, 12, 8)

    def test_indivisible_heads_rejected(self):
        with pytest.raises(ModelError):
            build(MultiHeadSelfAttention(heads=3), (12, 8))

    def test_permutation_equivariance(self):
        """Self-attention without positions commutes with permutation."""
        layer = build(MultiHeadSelfAttention(heads=2), (6, 4))
        x = batch((6, 4), n=1)
        perm = np.array([3, 1, 5, 0, 2, 4])
        out_perm = layer.forward(x[:, perm, :])
        np.testing.assert_allclose(out_perm, layer.forward(x)[:, perm, :], rtol=1e-4, atol=1e-5)

    def test_positional_encoding_breaks_equivariance(self):
        layer = build(PositionalEncoding(), (6, 4))
        x = np.zeros((1, 6, 4), dtype=np.float32)
        out = layer.forward(x)
        assert not np.allclose(out[0, 0], out[0, 3])

    def test_transformer_block_shape(self):
        layer = build(TransformerBlock(heads=2), (10, 8))
        assert layer.forward(batch((10, 8))).shape == (2, 10, 8)

    def test_transformer_param_count_counts_children(self):
        layer = build(TransformerBlock(heads=2), (10, 8))
        assert layer.param_count() > 4 * 8 * 8


class TestInception:
    def test_output_channels_triple(self):
        layer = build(InceptionModule(filters=32), (16, 100, 1))
        assert layer.output_shape == (96, 100, 1)

    def test_forward_shape(self):
        layer = build(InceptionModule(filters=8), (4, 20, 1))
        assert layer.forward(batch((4, 20, 1))).shape == (2, 24, 20, 1)

    def test_requires_collapsed_width(self):
        with pytest.raises(ModelError):
            build(InceptionModule(filters=8), (4, 20, 5))
