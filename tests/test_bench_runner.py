"""Parallel experiment runner: determinism, ordering, job control."""

import dataclasses

import pytest

from repro.bench.runner import (
    BENCH_JOBS_ENV,
    RunSpec,
    WorkloadSpec,
    default_jobs,
    run_many,
)
from repro.errors import SimulationError
from repro.sim.backtest import SimConfig

DURATION = 2.0


def _grid():
    workload = WorkloadSpec(duration_s=DURATION, seed=3, name="runner-test")
    specs = []
    for model in ("deeplob", "vanilla_cnn"):
        for ws in (False, True):
            specs.append(
                RunSpec(
                    profile="lighttrader",
                    config=SimConfig(
                        model=model, n_accelerators=2, workload_scheduling=ws
                    ),
                    workload=workload,
                    run_name=f"{model}-ws{int(ws)}",
                )
            )
    return specs


def test_serial_and_parallel_results_identical():
    specs = _grid()
    serial = run_many(specs, jobs=1)
    parallel = run_many(specs, jobs=2)
    assert len(serial) == len(parallel) == len(specs)
    for left, right in zip(serial, parallel):
        # Results come back in spec order with byte-identical metrics.
        assert dataclasses.asdict(left) == dataclasses.asdict(right)


def test_runs_differ_across_specs():
    serial = run_many(_grid(), jobs=1)
    assert serial[0].miss_rate != serial[1].miss_rate or (
        serial[0].mean_power_w != serial[1].mean_power_w
    )


def test_unknown_profile_rejected():
    with pytest.raises(SimulationError):
        RunSpec(
            profile="tpu",
            config=SimConfig(),
            workload=WorkloadSpec(duration_s=DURATION),
            run_name="bad",
        )


def test_default_jobs_env(monkeypatch):
    monkeypatch.delenv(BENCH_JOBS_ENV, raising=False)
    assert default_jobs() == 1
    monkeypatch.setenv(BENCH_JOBS_ENV, "6")
    assert default_jobs() == 6
    monkeypatch.setenv(BENCH_JOBS_ENV, "0")
    assert default_jobs() == 1  # clamped to serial
    monkeypatch.setenv(BENCH_JOBS_ENV, "many")
    with pytest.raises(SimulationError):
        default_jobs()


def test_trace_dir_routes_per_run(tmp_path):
    spec = _grid()[1]
    spec = dataclasses.replace(spec, trace_dir=str(tmp_path))
    (result,) = run_many([spec], jobs=1)
    assert result.n_queries > 0
    traces = list(tmp_path.glob("*.jsonl"))
    assert len(traces) == 1
    assert spec.run_name in traces[0].name
