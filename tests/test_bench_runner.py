"""Parallel experiment runner: determinism, ordering, job control."""

import dataclasses

import pytest

from repro.bench.runner import (
    BENCH_JOBS_ENV,
    RunSpec,
    WorkloadSpec,
    default_jobs,
    run_many,
)
from repro.errors import SimulationError
from repro.sim.backtest import SimConfig

DURATION = 2.0


def _grid():
    workload = WorkloadSpec(duration_s=DURATION, seed=3, name="runner-test")
    specs = []
    for model in ("deeplob", "vanilla_cnn"):
        for ws in (False, True):
            specs.append(
                RunSpec(
                    profile="lighttrader",
                    config=SimConfig(
                        model=model, n_accelerators=2, workload_scheduling=ws
                    ),
                    workload=workload,
                    run_name=f"{model}-ws{int(ws)}",
                )
            )
    return specs


def test_serial_and_parallel_results_identical():
    specs = _grid()
    serial = run_many(specs, jobs=1)
    parallel = run_many(specs, jobs=2)
    assert len(serial) == len(parallel) == len(specs)
    for left, right in zip(serial, parallel):
        # Results come back in spec order with byte-identical metrics.
        assert dataclasses.asdict(left) == dataclasses.asdict(right)


def test_runs_differ_across_specs():
    serial = run_many(_grid(), jobs=1)
    assert serial[0].miss_rate != serial[1].miss_rate or (
        serial[0].mean_power_w != serial[1].mean_power_w
    )


def test_unknown_profile_rejected():
    with pytest.raises(SimulationError):
        RunSpec(
            profile="tpu",
            config=SimConfig(),
            workload=WorkloadSpec(duration_s=DURATION),
            run_name="bad",
        )


def test_default_jobs_env(monkeypatch):
    monkeypatch.delenv(BENCH_JOBS_ENV, raising=False)
    assert default_jobs() == 1
    monkeypatch.setenv(BENCH_JOBS_ENV, "6")
    assert default_jobs() == 6
    monkeypatch.setenv(BENCH_JOBS_ENV, "0")
    assert default_jobs() == 1  # clamped to serial
    monkeypatch.setenv(BENCH_JOBS_ENV, "many")
    with pytest.raises(SimulationError):
        default_jobs()


def test_trace_dir_routes_per_run(tmp_path):
    spec = _grid()[1]
    spec = dataclasses.replace(spec, trace_dir=str(tmp_path))
    (result,) = run_many([spec], jobs=1)
    assert result.n_queries > 0
    traces = list(tmp_path.glob("*.jsonl"))
    assert len(traces) == 1
    assert spec.run_name in traces[0].name


def test_default_retries_env(monkeypatch):
    from repro.bench.runner import BENCH_RETRIES_ENV, default_retries

    monkeypatch.delenv(BENCH_RETRIES_ENV, raising=False)
    assert default_retries() == 1
    monkeypatch.setenv(BENCH_RETRIES_ENV, "3")
    assert default_retries() == 3
    monkeypatch.setenv(BENCH_RETRIES_ENV, "-2")
    assert default_retries() == 0  # clamped
    monkeypatch.setenv(BENCH_RETRIES_ENV, "lots")
    with pytest.raises(SimulationError):
        default_retries()


def test_worker_crash_retried_transparently(tmp_path, monkeypatch):
    """One worker dies mid-grid; the retry pool recovers every result."""
    from repro.bench.runner import BENCH_CRASH_FILE_ENV

    specs = _grid()
    crash_file = tmp_path / "crash"
    crash_file.write_text(specs[2].run_name)
    monkeypatch.setenv(BENCH_CRASH_FILE_ENV, str(crash_file))
    survived = run_many(specs, jobs=2, retries=1)
    assert not crash_file.exists()  # the hook fired exactly once
    monkeypatch.delenv(BENCH_CRASH_FILE_ENV)
    clean = run_many(specs, jobs=1)
    for left, right in zip(survived, clean):
        assert dataclasses.asdict(left) == dataclasses.asdict(right)


def test_worker_crash_without_retries_yields_runfailure(tmp_path, monkeypatch):
    from repro.bench.runner import BENCH_CRASH_FILE_ENV, RunFailure

    specs = _grid()
    doomed = 1
    # Re-arm the crash file before every attempt at the doomed spec: with
    # retries=0 the single attempt fails and must produce a placeholder.
    crash_file = tmp_path / "crash"
    crash_file.write_text(specs[doomed].run_name)
    monkeypatch.setenv(BENCH_CRASH_FILE_ENV, str(crash_file))
    results = run_many(specs, jobs=2, retries=0)
    failures = [r for r in results if isinstance(r, RunFailure)]
    assert failures  # at least the doomed spec (pool-mates may ride along)
    assert any(f.spec_index == doomed for f in failures)
    for failure in failures:
        assert not failure  # falsy: filter() idioms skip it
        assert results[failure.spec_index] is failure  # order preserved
        assert "worker process died" in failure.error
    # Specs finished before the crash keep their real results.
    clean = run_many(specs, jobs=1)
    for index, result in enumerate(results):
        if not isinstance(result, RunFailure):
            assert dataclasses.asdict(result) == dataclasses.asdict(clean[index])


def test_ordinary_exception_still_propagates():
    specs = _grid()[:2]
    bad = dataclasses.replace(
        specs[1],
        workload=WorkloadSpec(duration_s=DURATION, seed=3, name="runner-test"),
        config=SimConfig(model="no_such_model", n_accelerators=2),
    )
    with pytest.raises(Exception):
        run_many([specs[0], bad], jobs=2)


@dataclasses.dataclass(frozen=True)
class _TinySpec:
    """Minimal spec for custom-worker tests (no workload attribute)."""

    run_name: str
    sleep_s: float = 0.0


def _tiny_worker(spec):
    import time as _time

    if spec.sleep_s:
        _time.sleep(spec.sleep_s)
    return ("ran", spec.run_name)


def test_custom_worker_runs_through_the_pool():
    specs = [_TinySpec("a"), _TinySpec("b"), _TinySpec("c")]
    assert run_many(specs, jobs=2, worker=_tiny_worker) == [
        ("ran", "a"),
        ("ran", "b"),
        ("ran", "c"),
    ]
    # Inline path uses the same worker.
    assert run_many(specs, jobs=1, worker=_tiny_worker) == [
        ("ran", "a"),
        ("ran", "b"),
        ("ran", "c"),
    ]


def test_timeout_contains_wedged_run_as_runfailure():
    from repro.bench.runner import RunFailure

    specs = [_TinySpec("fast1"), _TinySpec("slow", sleep_s=60.0), _TinySpec("fast2")]
    results = run_many(specs, jobs=2, worker=_tiny_worker, timeout_s=1.0)
    assert results[0] == ("ran", "fast1")
    assert results[2] == ("ran", "fast2")
    failure = results[1]
    assert isinstance(failure, RunFailure)
    assert failure.spec_index == 1
    assert "wall-clock timeout" in failure.error
    assert not failure  # falsy placeholder, like crash failures


def test_timeout_env_default(monkeypatch):
    from repro.bench.runner import BENCH_TIMEOUT_S_ENV, default_timeout_s

    monkeypatch.delenv(BENCH_TIMEOUT_S_ENV, raising=False)
    assert default_timeout_s() == 0.0  # off by default
    monkeypatch.setenv(BENCH_TIMEOUT_S_ENV, "2.5")
    assert default_timeout_s() == 2.5
    monkeypatch.setenv(BENCH_TIMEOUT_S_ENV, "-1")
    assert default_timeout_s() == 0.0  # clamped to the minimum
    monkeypatch.setenv(BENCH_TIMEOUT_S_ENV, "soon")
    with pytest.raises(SimulationError):
        default_timeout_s()


def test_backoff_schedule_is_exponential_and_capped():
    from repro.bench.runner import _BACKOFF_BASE_S, _BACKOFF_CAP_S, _backoff_s

    assert _backoff_s(1) == _BACKOFF_BASE_S
    assert _backoff_s(2) == 2 * _BACKOFF_BASE_S
    assert _backoff_s(3) == 4 * _BACKOFF_BASE_S
    assert _backoff_s(100) == _BACKOFF_CAP_S


def test_retry_sleeps_with_backoff_between_pool_rebuilds(tmp_path, monkeypatch):
    import repro.bench.runner as runner_module
    from repro.bench.runner import BENCH_CRASH_FILE_ENV, _backoff_s

    slept = []
    monkeypatch.setattr(runner_module.time, "sleep", slept.append)
    specs = _grid()
    crash_file = tmp_path / "crash"
    crash_file.write_text(specs[2].run_name)
    monkeypatch.setenv(BENCH_CRASH_FILE_ENV, str(crash_file))
    results = run_many(specs, jobs=2, retries=2)
    assert all(not isinstance(r, runner_module.RunFailure) for r in results)
    # One pool rebuild after the crash → one backoff sleep.
    assert slept == [_backoff_s(1)]


def test_workload_spec_traffic_override():
    from repro.sim.workload import Regime, TrafficSpec

    custom = TrafficSpec(
        calm=Regime("calm", rate_hz=100.0, mean_dwell_s=2.0),
        episodes=(Regime("burst", rate_hz=20_000.0, mean_dwell_s=0.05),),
        episode_weights=(1.0,),
    )
    default_spec = WorkloadSpec(duration_s=DURATION, seed=3, name="traffic-test")
    custom_spec = dataclasses.replace(default_spec, traffic=custom)
    assert custom_spec != default_spec  # distinct cache keys
    default_workload = default_spec.build()
    custom_workload = custom_spec.build()
    assert len(custom_workload) != len(default_workload)
    # The spec stays hashable (cache key) and rebuilds the same workload.
    assert custom_spec.build() is custom_workload


def test_fault_plan_travels_to_workers():
    from repro.faults import FaultEvent, FaultPlan, DEVICE_FAILURE
    from repro.units import sec_to_ns

    plan = FaultPlan(
        events=(
            FaultEvent(t_ns=sec_to_ns(0.5), kind=DEVICE_FAILURE, accel_id=0),
        )
    )
    specs = _grid()[:2]
    faulted = [dataclasses.replace(spec, faults=plan) for spec in specs]
    parallel = run_many(faulted, jobs=2)
    serial = run_many(faulted, jobs=1)
    for left, right in zip(parallel, serial):
        assert dataclasses.asdict(left) == dataclasses.asdict(right)
