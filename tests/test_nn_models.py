"""Tests for model construction, accounting and precision emulation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ModelError
from repro.nn import (
    Model,
    Precision,
    benchmark_models,
    bf16_ulp,
    build_model,
    cast,
    complexity_sweep,
    dequantize_int8,
    quantize_int8,
    to_bf16,
)
from repro.nn.layers import Dense, Softmax


def lob_batch(shape, n=2, seed=0):
    return np.random.default_rng(seed).standard_normal((n, *shape)).astype(np.float32)


class TestBenchmarkModels:
    @pytest.fixture(scope="class")
    def models(self):
        return benchmark_models(seed=0)

    def test_all_three_present(self, models):
        assert set(models) == {"vanilla_cnn", "translob", "deeplob"}

    @pytest.mark.parametrize("name", ["vanilla_cnn", "translob", "deeplob"])
    def test_forward_produces_distribution(self, models, name):
        model = models[name]
        out = model.forward(lob_batch(model.input_shape, n=3))
        assert out.shape == (3, 3)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-5)
        assert (out >= 0).all()

    def test_complexity_ordering_matches_table2(self, models):
        """Table II orders: vanilla CNN < TransLOB < DeepLOB in total OPs."""
        ops = {name: m.total_ops() for name, m in models.items()}
        assert ops["vanilla_cnn"] < ops["translob"] < ops["deeplob"]

    def test_deterministic_build(self):
        a = build_model("deeplob", seed=3)
        b = build_model("deeplob", seed=3)
        x = lob_batch(a.input_shape)
        np.testing.assert_array_equal(a.forward(x), b.forward(x))

    def test_seed_changes_weights(self):
        a = build_model("vanilla_cnn", seed=1)
        b = build_model("vanilla_cnn", seed=2)
        x = lob_batch(a.input_shape)
        assert not np.allclose(a.forward(x), b.forward(x))

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            build_model("resnet152")

    def test_predict_classes_range(self, models):
        model = models["vanilla_cnn"]
        classes = model.predict_classes(lob_batch(model.input_shape, n=8))
        assert classes.shape == (8,)
        assert set(np.unique(classes)).issubset({0, 1, 2})

    def test_summary_mentions_all_layers(self, models):
        summary = models["deeplob"].summary()
        assert "lstm" in summary
        assert "inception" in summary
        assert "TOTAL" in summary

    def test_weight_bytes_bf16(self, models):
        model = models["vanilla_cnn"]
        assert model.weight_bytes() == 2 * model.param_count()


class TestComplexitySweep:
    def test_monotone_in_macs(self):
        sweep = complexity_sweep()
        macs = [m.macs() for m in sweep.values()]
        assert list(sweep) == ["M1", "M2", "M3", "M4", "M5"]
        assert macs == sorted(macs)
        assert macs[-1] / macs[0] > 50  # spans orders of magnitude

    def test_all_runnable(self):
        for model in complexity_sweep().values():
            out = model.forward(lob_batch(model.input_shape, n=1))
            np.testing.assert_allclose(out.sum(), 1.0, rtol=1e-5)


class TestModelValidation:
    def test_empty_model_rejected(self):
        with pytest.raises(ModelError):
            Model("empty", (4,), [])

    def test_wrong_batch_shape_rejected(self):
        model = Model("toy", (4,), [Dense(3), Softmax()])
        with pytest.raises(ModelError):
            model.forward(lob_batch((5,)))


class TestBF16:
    def test_idempotent(self):
        x = np.random.default_rng(0).standard_normal(1000).astype(np.float32)
        once = to_bf16(x)
        np.testing.assert_array_equal(to_bf16(once), once)

    def test_error_bounded_by_ulp(self):
        x = np.random.default_rng(1).standard_normal(10_000).astype(np.float32) * 100
        err = np.abs(to_bf16(x) - x)
        bound = np.array([bf16_ulp(v) for v in x])
        assert (err <= bound / 2 + 1e-30).all()

    def test_exact_values_preserved(self):
        exact = np.array([0.0, 1.0, -2.0, 0.5, 256.0], dtype=np.float32)
        np.testing.assert_array_equal(to_bf16(exact), exact)

    def test_nan_preserved(self):
        assert np.isnan(to_bf16(np.array([np.nan], dtype=np.float32)))[0]

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    @settings(max_examples=200, deadline=None)
    def test_relative_error_property(self, value):
        x = np.array([value], dtype=np.float32)
        out = to_bf16(x)[0]
        # Near float32 max, rounding up legitimately overflows to BF16 inf.
        if value != 0 and abs(value) < 3.38e38:
            assert abs(out - value) <= abs(value) * 2**-7 + 1e-38


class TestInt8:
    def test_roundtrip_error_bounded(self):
        x = np.random.default_rng(2).standard_normal(1000).astype(np.float32)
        q, scale = quantize_int8(x)
        err = np.abs(dequantize_int8(q, scale) - x)
        assert err.max() <= scale / 2 + 1e-7

    def test_zero_tensor(self):
        q, scale = quantize_int8(np.zeros(5, dtype=np.float32))
        assert (q == 0).all()
        assert scale == 1.0

    def test_range_used(self):
        q, __ = quantize_int8(np.array([-1.0, 1.0], dtype=np.float32))
        assert q.min() == -127 and q.max() == 127


class TestPrecisionInference:
    def test_bf16_inference_close_to_fp32(self):
        model = build_model("vanilla_cnn")
        x = lob_batch(model.input_shape, n=4)
        fp32 = model.forward(x)
        bf16 = model.forward(x, precision=Precision.BF16)
        # Class decisions should rarely flip; distributions stay close.
        np.testing.assert_allclose(bf16, fp32, atol=0.05)

    def test_int8_keeps_valid_distribution(self):
        model = build_model("vanilla_cnn")
        x = lob_batch(model.input_shape, n=2)
        out = model.forward(x, precision=Precision.INT8)
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-2)

    def test_ops_multipliers(self):
        assert Precision.BF16.ops_multiplier == 1
        assert Precision.INT8.ops_multiplier == 4
        assert Precision.INT4.ops_multiplier == 8

    def test_cast_fp32_passthrough(self):
        x = np.array([1.2345678], dtype=np.float32)
        np.testing.assert_array_equal(cast(x, Precision.FP32), x)
