"""Differential property tests: array engine vs the golden reference.

The struct-of-arrays engine (``repro.lob.array_book`` /
``repro.lob.array_matching``) is only allowed to exist because it is
bit-exact against the object-per-order reference: same fills (prices,
quantities, maker ids and owners), same :class:`MarketEvent` stream with
the same sequence numbers, same books afterwards.  These tests drive
seeded randomized op streams (submit/cancel/replace across order types
and TIFs) through both engines per-op, through ``replay_ops`` as one
batch, and through the market generator end-to-end (byte-identical
tapes) — the same checks the lob-parity CI gate runs.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.errors import MatchingError, OrderBookError
from repro.lob import (
    ArrayMatchingEngine,
    MatchingEngine,
    Order,
    OrderType,
    Side,
    TimeInForce,
)
from repro.lob.array_matching import OP_CANCEL, OP_REPLACE, OP_SUBMIT, OpBatch
from repro.market.generator import generate_session

SYMBOL = "ES"


def make_stream(seed: int, n_ops: int = 2500) -> list[tuple[int, ...]]:
    """A seeded randomized op stream as (kind, side, otype, tif, price, qty, id).

    Order ids are assigned explicitly so both engines see identical ids.
    Roughly 70% submits (a mix of LIMIT and MARKET across DAY/IOC/FOK),
    15% cancels and 15% replaces of orders that may still be resting.
    """
    rng = np.random.default_rng(seed)
    rows: list[tuple[int, ...]] = []
    live: list[int] = []
    oid = 0
    for _ in range(n_ops):
        r = rng.uniform()
        if r < 0.70 or not live:
            oid += 1
            side = int(rng.integers(0, 2))
            otype = (
                int(OrderType.MARKET)
                if rng.uniform() < 0.12
                else int(OrderType.LIMIT)
            )
            tif = int(rng.choice([0, 1, 2], p=[0.6, 0.3, 0.1]))
            price = int(rng.integers(95, 106)) if otype == int(OrderType.LIMIT) else 1
            qty = int(rng.integers(1, 12))
            rows.append((OP_SUBMIT, side, otype, tif, price, qty, oid))
            if otype == int(OrderType.LIMIT) and tif == int(TimeInForce.DAY):
                live.append(oid)
        elif r < 0.85:
            victim = live.pop(int(rng.integers(0, len(live))))
            rows.append((OP_CANCEL, 0, 0, 0, 0, 0, victim))
        else:
            target = live[int(rng.integers(0, len(live)))]
            new_price = int(rng.integers(95, 106)) if rng.uniform() < 0.7 else 0
            new_qty = (
                int(rng.integers(1, 12))
                if new_price == 0 or rng.uniform() < 0.5
                else 0
            )
            if new_price == 0 and new_qty == 0:
                new_qty = 1
            rows.append((OP_REPLACE, 0, 0, 0, new_price, new_qty, target))
    return rows


def apply_op(engine, row, timestamp=0):
    """Play one stream row into ``engine``; returns its MatchResult."""
    kind, side, otype, tif, price, qty, order_id = row
    if kind == OP_SUBMIT:
        order = Order(
            side=Side(side),
            price=price,
            quantity=qty,
            order_id=order_id,
            order_type=OrderType(otype),
            tif=TimeInForce(tif),
            owner="replay",
        )
        return engine.submit(SYMBOL, order, timestamp)
    if kind == OP_CANCEL:
        return engine.cancel(SYMBOL, order_id, timestamp)
    return engine.replace(
        SYMBOL,
        order_id,
        timestamp,
        new_price=price if price > 0 else None,
        new_quantity=qty if qty > 0 else None,
    )


def valid_rows(rows):
    """Filter ``rows`` to the ops the reference engine accepts as legal.

    Cancels/replaces of orders that already traded away raise — drop
    those rows so every remaining op is applied by both engines.
    """
    engine = MatchingEngine()
    kept = []
    for row in rows:
        try:
            apply_op(engine, row)
        except (OrderBookError, MatchingError):
            continue
        kept.append(row)
    return kept


@pytest.mark.parametrize("seed", [7, 11, 42])
def test_per_op_differential_parity(seed):
    rows = valid_rows(make_stream(seed))
    reference = MatchingEngine()
    array = ArrayMatchingEngine()
    for i, row in enumerate(rows):
        ref = apply_op(reference, row)
        arr = apply_op(array, row)
        assert arr.accepted == ref.accepted, (i, row)
        assert arr.fills == ref.fills, (i, row)
        assert arr.events == ref.events, (i, row)  # includes sequences
        assert not array.book(SYMBOL).is_crossed()
        if i % 100 == 0:
            ref_book = reference.book(SYMBOL)
            arr_book = array.book(SYMBOL)
            assert arr_book.bids.top(10) == ref_book.bids.top(10)
            assert arr_book.asks.top(10) == ref_book.asks.top(10)
    assert array._sequence == reference._sequence
    assert len(array.book(SYMBOL)) == len(reference.book(SYMBOL))
    assert array.book(SYMBOL).bids.top(25) == reference.book(SYMBOL).bids.top(25)
    assert array.book(SYMBOL).asks.top(25) == reference.book(SYMBOL).asks.top(25)


@pytest.mark.parametrize("seed", [3, 19])
def test_batch_replay_matches_per_op(seed):
    rows = valid_rows(make_stream(seed))
    per_op = ArrayMatchingEngine()
    n_fills = traded = notional = rejected = 0
    for row in rows:
        result = apply_op(per_op, row)
        if not result.accepted:
            rejected += 1
        for fill in result.fills:
            n_fills += 1
            traded += fill.quantity
            notional += fill.price * fill.quantity

    batch = ArrayMatchingEngine()
    stats = batch.replay_ops(SYMBOL, OpBatch.from_rows(rows))
    assert stats.n_ops == len(rows)
    assert stats.n_fills == n_fills
    assert stats.traded_quantity == traded
    assert stats.notional == notional
    assert stats.rejected == rejected
    assert stats.final_sequence == per_op._sequence
    assert batch.book(SYMBOL).bids.top(25) == per_op.book(SYMBOL).bids.top(25)
    assert batch.book(SYMBOL).asks.top(25) == per_op.book(SYMBOL).asks.top(25)
    assert not batch.book(SYMBOL).is_crossed()


def test_per_op_calls_work_after_a_batch():
    # The batch kernel checks arrays out into plain lists and commits
    # them back; per-op calls on the same book must keep working.
    engine = ArrayMatchingEngine()
    engine.replay_ops(SYMBOL, OpBatch.from_rows(valid_rows(make_stream(5))))
    probe = Order(side=Side.BID, price=2, quantity=3, order_id=10**9, owner="after")
    engine.submit(SYMBOL, probe, 1)
    assert probe.order_id in engine.book(SYMBOL)
    engine.cancel(SYMBOL, probe.order_id, 2)
    assert probe.order_id not in engine.book(SYMBOL)


def test_failed_batch_leaves_book_untouched():
    engine = ArrayMatchingEngine()
    engine.submit(
        SYMBOL, Order(side=Side.BID, price=100, quantity=5, order_id=1), 0
    )
    before_bids = engine.book(SYMBOL).bids.top(5)
    bad = OpBatch.from_rows(
        [
            (OP_SUBMIT, int(Side.ASK), 0, 0, 105, 5, 2),
            (OP_CANCEL, 0, 0, 0, 0, 0, 999),  # unknown order: raises
        ]
    )
    with pytest.raises(OrderBookError):
        engine.replay_ops(SYMBOL, bad)
    assert engine.book(SYMBOL).bids.top(5) == before_bids
    assert engine.book(SYMBOL).asks.top(5) == []  # ask from op 1 rolled back
    assert 2 not in engine.book(SYMBOL)


def _tape_digest(tmp_path, monkeypatch, engine_name):
    monkeypatch.setenv("REPRO_LOB_ENGINE", engine_name)
    tape = generate_session(duration_s=1.5, seed=3)
    path = tmp_path / f"tape_{engine_name}.npz"
    tape.save(path)
    return len(tape), hashlib.sha256(path.read_bytes()).hexdigest()


def test_generator_tape_byte_identical_across_engines(tmp_path, monkeypatch):
    n_ref, ref_digest = _tape_digest(tmp_path, monkeypatch, "reference")
    n_arr, arr_digest = _tape_digest(tmp_path, monkeypatch, "array")
    assert n_ref == n_arr > 0
    assert ref_digest == arr_digest
