"""Scenario campaign engine: registry, invariants, runner, CLI gate."""

import dataclasses
import json

import pytest

from repro.campaign import __main__ as campaign_cli
from repro.campaign.invariants import (
    BUILTIN_INVARIANTS,
    BookIntegrity,
    BoundedMissRate,
    MonotoneSequenceAfterResync,
    NoNegativeQueueDepth,
    OffloadConservation,
    PowerBudget,
    QuarantineIsolation,
    RunCompleted,
    TraceReadable,
    Violation,
    evaluate_run,
    invariant_names,
)
from repro.campaign.probes import book_integrity_probe, feed_sequence_probe
from repro.campaign.runner import run_campaign
from repro.campaign.scenarios import (
    CAMPAIGNS,
    campaign_scenarios,
    register_scenario,
    scenario,
    scenario_names,
)
from repro.errors import SimulationError
from repro.faults.plan import FaultEvent, FaultPlan, merge_plans
from repro.units import sec_to_ns

DURATION = 0.8  # simulated seconds: enough queries to score, fast in CI


# --- merge_plans -----------------------------------------------------------------


def test_merge_plans_orders_by_time_then_kind_then_position():
    t = sec_to_ns(0.5)
    a = FaultPlan(
        events=(
            FaultEvent(t_ns=t, kind="thermal_throttle", accel_id=0),
            FaultEvent(t_ns=t, kind="device_failure", accel_id=1),
        ),
        seed=7,
    )
    b = FaultPlan(
        events=(
            FaultEvent(t_ns=t, kind="device_failure", accel_id=2),
            FaultEvent(t_ns=sec_to_ns(0.1), kind="dma_stall", accel_id=None),
        ),
        seed=7,
    )
    merged = merge_plans(a, b)
    assert [e.kind for e in merged.events] == [
        "dma_stall",  # earliest time wins outright
        "device_failure",  # same t: kind breaks the tie alphabetically
        "device_failure",  # same (t, kind): concatenation position (a before b)
        "thermal_throttle",
    ]
    # Same (t, kind): plan a's event precedes plan b's.
    assert merged.events[1].accel_id == 1
    assert merged.events[2].accel_id == 2
    assert merged.seed == 7


def test_merge_plans_empty_and_seed_handling():
    assert merge_plans().empty
    assert merge_plans(FaultPlan(), FaultPlan()).empty
    only = FaultPlan(
        events=(FaultEvent(t_ns=1, kind="device_failure", accel_id=0),), seed=3
    )
    assert merge_plans(FaultPlan(), only).seed == 3
    mixed = merge_plans(
        only, FaultPlan(events=only.events, seed=4)
    )
    assert mixed.seed is None  # no single seed describes the merge
    assert len(mixed.events) == 2


# --- scenario registry and lowering ----------------------------------------------


def test_registry_knows_builtin_scenarios_and_campaigns():
    assert "nominal" in scenario_names()
    assert "flash_crash" in scenario_names()
    assert set(CAMPAIGNS["smoke"]) <= set(scenario_names())
    assert [s.name for s in campaign_scenarios("smoke")][0] == "nominal"
    with pytest.raises(SimulationError):
        scenario("no_such_scenario")


def test_scenario_lowering_is_deterministic():
    spec_a, seed_a = scenario("flash_crash").lower(DURATION, 5)
    spec_b, seed_b = scenario("flash_crash").lower(DURATION, 5)
    assert seed_a == seed_b == 5 + scenario("flash_crash").seed_offset
    assert spec_a == spec_b  # frozen dataclasses all the way down
    other, _ = scenario("flash_crash").lower(DURATION, 6)
    assert other.workload != spec_a.workload


def test_scenario_seed_offsets_are_distinct():
    offsets = [scenario(name).seed_offset for name in scenario_names()]
    assert len(offsets) == len(set(offsets))


# --- probes ----------------------------------------------------------------------


def test_book_probe_reproduces_and_finds_no_violations():
    probe = book_integrity_probe(seed=11, duration_s=0.2)
    assert probe["checksum"] == probe["checksum_repeat"]
    assert probe["ticks"] == probe["ticks_repeat"] > 0
    assert probe["violations"] == []


def test_feed_probe_accounting_is_exact_under_perturbation():
    probe = feed_sequence_probe(
        seed=3, loss_prob=0.05, duplicate_prob=0.04, reorder_prob=0.04
    )
    assert probe["accepted_monotone"]
    assert probe["duplicates_ordered"]
    assert probe["lost_packets"] == probe["expected_lost"]
    assert probe["duplicates"] == probe["expected_duplicates"]
    assert probe["planned"]["loss"] > 0  # the perturbation actually sampled


# --- invariants fire on synthetic violations -------------------------------------


def _passing_evidence() -> dict:
    return {
        "scenario": "synthetic",
        "seed": 9,
        "profile": "lighttrader",
        "params": {"max_miss_rate": 0.5, "power_epsilon_w": 1e-6},
        "config": {"max_pending": 128, "budget_w": 55.0},
        "result": {"responded": 100, "miss_rate": 0.1},
        "metrics": {
            "counters": {
                "offload.admitted": 10,
                "queries.responded": 6,
                "queries.completed_late": 2,
                "queries.dropped": 1,
                "queries.unscored": 1,
            },
            "gauges": {"offload.queue_depth_high_water": {"value": 128.0}},
        },
        "probes": {
            "book": {
                "checksum": "ab",
                "checksum_repeat": "ab",
                "ticks": 5,
                "violations": [],
            },
            "feed": {
                "accepted_monotone": True,
                "duplicates_ordered": True,
                "lost_packets": 3,
                "expected_lost": 3,
                "duplicates": 2,
                "expected_duplicates": 2,
            },
        },
        "error": None,
        "trace_error": None,
    }


def test_synthetic_evidence_passes_every_builtin():
    verdicts, violations = evaluate_run(_passing_evidence(), events=[])
    assert violations == []
    assert set(verdicts) == set(invariant_names())
    assert set(verdicts.values()) == {"pass"}


def test_run_completed_fires_on_error():
    evidence = _passing_evidence()
    evidence["error"] = "RuntimeError: boom"
    assert RunCompleted().check(evidence, None)


def test_trace_readable_fires_on_trace_error():
    evidence = _passing_evidence()
    evidence["trace_error"] = {"error": "corrupt_trace", "line": 3}
    (detail,) = TraceReadable().check(evidence, None)
    assert "corrupt_trace" in detail


def test_bounded_miss_rate_fires_on_breach_and_wedge():
    evidence = _passing_evidence()
    evidence["result"] = {"responded": 100, "miss_rate": 0.51}
    assert "exceeds" in BoundedMissRate().check(evidence, None)[0]
    evidence["result"] = {"responded": 0, "miss_rate": 1.0}
    details = BoundedMissRate().check(evidence, None)
    assert any("zero queries" in d for d in details)


def test_negative_queue_depth_fires_and_cap_equality_passes():
    evidence = _passing_evidence()
    evidence["metrics"]["counters"]["offload.rejected"] = -1
    details = NoNegativeQueueDepth().check(evidence, None)
    assert any("negative" in d for d in details)
    evidence = _passing_evidence()
    # High-water EQUAL to max_pending is legal (cap reached, not breached)…
    assert NoNegativeQueueDepth().check(evidence, None) == []
    # …one past it is not.
    evidence["metrics"]["gauges"]["offload.queue_depth_high_water"]["value"] = 129.0
    assert NoNegativeQueueDepth().check(evidence, None)


def test_offload_conservation_fires_on_leak():
    evidence = _passing_evidence()
    evidence["metrics"]["counters"]["queries.dropped"] = 0  # one query vanishes
    (detail,) = OffloadConservation().check(evidence, None)
    assert "offload.admitted 10" in detail


def test_book_integrity_fires_on_checksum_mismatch_and_structure():
    evidence = _passing_evidence()
    evidence["probes"]["book"]["checksum_repeat"] = "cd"
    assert any(
        "checksum diverged" in d for d in BookIntegrity().check(evidence, None)
    )
    evidence = _passing_evidence()
    evidence["probes"]["book"]["violations"] = ["seq 4: crossed book"]
    assert any("crossed book" in d for d in BookIntegrity().check(evidence, None))


def test_quarantine_isolation_fires_on_issue_inside_window():
    evidence = _passing_evidence()
    events = [
        {"type": "fault", "kind": "device_failure", "accel_id": 0, "t_ns": 1_000},
        {"type": "fault", "kind": "device_recovery", "accel_id": 0, "t_ns": 9_000},
        {
            "type": "query",
            "query_id": 42,
            "outcome": "in_time",
            "accel_id": 0,
            "arrival_ns": 2_000,
            "stages": {"queue_wait": 100},
        },
    ]
    (detail,) = QuarantineIsolation().check(evidence, events)
    assert "query 42" in detail and "quarantine" in detail
    # The same query on a healthy device is fine.
    events[2]["accel_id"] = 1
    assert QuarantineIsolation().check(evidence, events) == []


def test_power_budget_fires_on_over_budget_sample():
    evidence = _passing_evidence()
    events = [{"type": "power", "t_ns": 5, "watts": 55.2}]
    (detail,) = PowerBudget().check(evidence, events)
    assert "55.2" in detail
    # Non-LightTrader profiles have no budget to enforce.
    evidence["profile"] = "gpu"
    assert PowerBudget().check(evidence, events) == []


def test_sequence_invariant_fires_on_accounting_mismatch():
    evidence = _passing_evidence()
    evidence["probes"]["feed"]["lost_packets"] = 4
    assert any(
        "lost-packet accounting" in d
        for d in MonotoneSequenceAfterResync().check(evidence, None)
    )
    evidence = _passing_evidence()
    evidence["probes"]["feed"]["accepted_monotone"] = False
    assert MonotoneSequenceAfterResync().check(evidence, None)


def test_evaluate_run_names_scenario_seed_invariant():
    evidence = _passing_evidence()
    evidence["error"] = "Boom"
    verdicts, violations = evaluate_run(evidence, None)
    assert verdicts["run_completed"] == "fail"
    violation = violations[0]
    assert isinstance(violation, Violation)
    assert violation.scenario == "synthetic" and violation.seed == 9
    diagnosis = violation.diagnosis()
    assert "scenario=synthetic" in diagnosis
    assert "seed=9" in diagnosis
    assert "invariant=run_completed" in diagnosis


# --- end-to-end campaign ---------------------------------------------------------


def test_mini_campaign_passes_and_report_is_byte_reproducible(tmp_path):
    first = run_campaign(
        scenario_names=("nominal", "feed_outage_storm"),
        duration_s=DURATION,
        base_seed=1,
        jobs=1,
        out_dir=tmp_path / "a",
    )
    assert first.passed
    assert first.report["schema"] == "repro.campaign.report/v1"
    assert len(first.report["runs"]) == 2
    for run in first.report["runs"]:
        assert set(run["verdicts"].values()) == {"pass"}
    second = run_campaign(
        scenario_names=("nominal", "feed_outage_storm"),
        duration_s=DURATION,
        base_seed=1,
        jobs=1,
        out_dir=tmp_path / "b",
    )
    # Different output directories, byte-identical reports.
    assert first.report_path.read_bytes() == second.report_path.read_bytes()


def test_campaign_repeat_audits_determinism(tmp_path):
    outcome = run_campaign(
        scenario_names=("nominal",),
        duration_s=DURATION,
        base_seed=1,
        jobs=1,
        repeat=2,
        out_dir=tmp_path,
    )
    assert outcome.passed
    assert "determinism" in outcome.report["invariants"]
    assert all(
        run["verdicts"]["determinism"] == "pass" for run in outcome.report["runs"]
    )


def test_broken_scenario_fails_with_one_line_diagnosis(tmp_path, capsys):
    # A deliberately impossible bound: any miss rate (even 0) breaches it.
    register_scenario(
        dataclasses.replace(
            scenario("nominal"), name="broken_nominal", max_miss_rate=-1.0
        ),
        replace=True,
    )
    status = campaign_cli.main(
        [
            "run",
            "--scenario",
            "broken_nominal",
            "--duration",
            str(DURATION),
            "--jobs",
            "1",
            "--seed",
            "4",
            "--dir",
            str(tmp_path),
        ]
    )
    assert status == 1
    err = capsys.readouterr().err
    assert "FAIL scenario=broken_nominal seed=4 invariant=bounded_miss_rate" in err
    report = json.loads((tmp_path / "campaign_report.json").read_text())
    assert report["passed"] is False
    assert report["runs"][0]["verdicts"]["bounded_miss_rate"] == "fail"


def test_cli_list_shows_registry(capsys):
    assert campaign_cli.main(["list"]) == 0
    out = capsys.readouterr().out
    assert "smoke:" in out
    assert "flash_crash" in out
    for invariant in BUILTIN_INVARIANTS:
        assert invariant.name in out


def test_worker_failure_is_contained_as_run_completed_violation(tmp_path):
    # An unknown model makes the backtest raise inside the worker; the
    # campaign must contain it as a failed run_completed verdict naming
    # the scenario, never an unhandled exception.
    register_scenario(
        dataclasses.replace(
            scenario("nominal"), name="doomed_nominal", model="no_such_model"
        ),
        replace=True,
    )
    outcome = run_campaign(
        scenario_names=("doomed_nominal",),
        duration_s=DURATION,
        base_seed=1,
        jobs=1,
        out_dir=tmp_path,
    )
    assert not outcome.passed
    assert any(
        v.invariant == "run_completed" and v.scenario == "doomed_nominal"
        for v in outcome.violations
    )
