"""Tests for the exchange gateway (order entry → matching → exec reports)."""

import pytest

from repro.lob import MatchingEngine, Order, Side
from repro.market.gateway import ExchangeGateway, ExecType
from repro.protocol import ILink3Cancel, ILink3Order, SecurityDirectory


@pytest.fixture
def setup():
    engine = MatchingEngine()
    directory = SecurityDirectory()
    directory.register("ESU6")
    # Resting liquidity: asks 18_002(5), bids 18_000(5).
    engine.submit("ESU6", Order(side=Side.ASK, price=18_002, quantity=5, owner="mm"), 0)
    engine.submit("ESU6", Order(side=Side.BID, price=18_000, quantity=5, owner="mm"), 0)
    return engine, directory, ExchangeGateway(engine, directory)


def order_msg(directory, side=Side.BID, price=18_002, qty=2, cl=1, ioc=True):
    return ILink3Order(
        seq_num=cl,
        sending_time=10,
        cl_ord_id=cl,
        security_id=directory.id_of("ESU6"),
        side=side,
        order_qty=qty,
        price=price,
        ioc=ioc,
    ).encode()


class TestNewOrders:
    def test_marketable_order_fills(self, setup):
        __, directory, gateway = setup
        report = gateway.submit(order_msg(directory), timestamp=10)
        assert report.exec_type is ExecType.FILLED
        assert report.filled_qty == 2
        assert report.avg_price_ticks == pytest.approx(18_002)
        assert report.leaves_qty == 0

    def test_partial_ioc_expires_remainder(self, setup):
        engine, directory, gateway = setup
        report = gateway.submit(order_msg(directory, qty=9), timestamp=10)
        assert report.exec_type is ExecType.PARTIAL
        assert report.filled_qty == 5
        assert report.leaves_qty == 0
        assert engine.book("ESU6").best_bid == 18_000  # nothing rested

    def test_passive_limit_acknowledges_and_rests(self, setup):
        engine, directory, gateway = setup
        report = gateway.submit(
            order_msg(directory, price=18_001, ioc=False), timestamp=10
        )
        assert report.exec_type is ExecType.ACKNOWLEDGED
        assert report.leaves_qty == 2
        assert engine.book("ESU6").best_bid == 18_001

    def test_ioc_away_from_market_expires(self, setup):
        __, directory, gateway = setup
        report = gateway.submit(order_msg(directory, price=17_990), timestamp=10)
        assert report.exec_type is ExecType.EXPIRED
        assert report.filled_qty == 0

    def test_unknown_security_rejected(self, setup):
        __, directory, gateway = setup
        msg = ILink3Order(1, 10, 1, security_id=99, side=Side.BID, order_qty=1, price=10).encode()
        report = gateway.submit(msg, timestamp=10)
        assert report.exec_type is ExecType.REJECTED
        assert gateway.stats.rejects == 1

    def test_garbage_rejected(self, setup):
        __, __, gateway = setup
        report = gateway.submit(b"garbage", timestamp=10)
        assert report.exec_type is ExecType.REJECTED


class TestCancels:
    def test_cancel_resting_order(self, setup):
        engine, directory, gateway = setup
        gateway.submit(order_msg(directory, price=18_001, ioc=False, cl=7), 10)
        cancel = ILink3Cancel(
            seq_num=2,
            sending_time=11,
            cl_ord_id=8,
            orig_cl_ord_id=7,
            security_id=directory.id_of("ESU6"),
            side=Side.BID,
        ).encode()
        report = gateway.submit(cancel, timestamp=11)
        assert report.exec_type is ExecType.CANCELLED
        assert engine.book("ESU6").best_bid == 18_000

    def test_cancel_unknown_rejected(self, setup):
        __, directory, gateway = setup
        cancel = ILink3Cancel(1, 10, 2, 999, directory.id_of("ESU6"), Side.BID).encode()
        report = gateway.submit(cancel, timestamp=10)
        assert report.exec_type is ExecType.REJECTED

    def test_cancel_after_fill_rejected(self, setup):
        engine, directory, gateway = setup
        gateway.submit(order_msg(directory, price=18_001, ioc=False, cl=7), 10)
        # Someone lifts the resting bid entirely.
        engine.submit("ESU6", Order(side=Side.ASK, price=18_001, quantity=2, owner="x"), 11)
        cancel = ILink3Cancel(2, 12, 8, 7, directory.id_of("ESU6"), Side.BID).encode()
        report = gateway.submit(cancel, timestamp=12)
        assert report.exec_type is ExecType.REJECTED
        assert "no longer live" in report.reason


class TestEndToEndLoop:
    def test_trading_engine_to_gateway_fills(self, setup):
        """The full loop: prediction -> TradingEngine -> gateway -> fills."""
        import numpy as np

        from repro.lob import DepthSnapshot
        from repro.pipeline import TradingEngine

        engine, directory, gateway = setup
        trader = TradingEngine(security_id=directory.id_of("ESU6"))
        snapshot = DepthSnapshot.capture(engine.book("ESU6"), timestamp=20)
        decision = trader.on_inference(np.array([0.1, 0.1, 0.8]), snapshot, 20)
        assert decision.acted
        report = gateway.submit(decision.encoded, timestamp=20)
        assert report.exec_type in (ExecType.FILLED, ExecType.PARTIAL)
        assert report.filled_qty >= 1
