"""Fast tests for the experiment harness (tiny workloads)."""

import pytest

from repro.bench import (
    headline_workload,
    render_table,
    run_fig8,
    run_fig9,
    run_fig11,
    run_fig12,
    run_fig13,
    run_table1,
    run_table2,
    run_table3,
)


class TestTables:
    def test_table1(self):
        result = run_table1()
        assert result.measured_tflops == pytest.approx(16.4, abs=0.1)
        assert "16" in result.table()

    def test_table2(self):
        result = run_table2()
        assert set(result.measured_ops) == {"vanilla_cnn", "translob", "deeplob"}
        assert "Table II" in result.table()

    def test_table3(self):
        result = run_table3()
        assert result.exact_cells >= 27
        assert "2.0" in result.table()

    def test_fig9(self):
        result = run_fig9()
        assert result.ratio == pytest.approx(2.4, abs=0.15)
        assert "ratio" in result.table()


class TestFigureRunners:
    """Smoke runs on short workloads: structure, not calibration."""

    def test_fig8_structure(self):
        result = run_fig8(duration_s=8.0)
        assert list(result.response_rates) == ["M1", "M2", "M3", "M4", "M5"]
        lat = list(result.latencies_us.values())
        assert lat == sorted(lat)
        assert "Fig. 8" in result.table()

    def test_fig11_structure(self):
        result = run_fig11(duration_s=8.0)
        assert set(result.latency_us) == {"lighttrader", "gpu", "fpga"}
        assert result.speedup_vs("gpu") > 5
        assert result.speedup_vs("fpga") > 3
        assert "Fig. 11" in result.table()

    def test_fig12_structure(self):
        result = run_fig12(duration_s=8.0, models=("vanilla_cnn",), counts=(1, 4))
        assert set(result.rates) == {"sufficient", "limited"}
        assert set(result.rates["sufficient"]["vanilla_cnn"]) == {1, 4}
        assert "Fig. 12" in result.table()

    def test_fig13_structure(self):
        result = run_fig13(
            duration_s=8.0,
            models=("vanilla_cnn",),
            counts=(1,),
            conditions=("limited",),
            schemes=("baseline", "ws"),
        )
        cell = result.miss["limited"]["vanilla_cnn"][1]
        assert set(cell) == {"baseline", "ws"}
        assert 0 <= result.reduction("limited", "vanilla_cnn", 1, "ws") <= 1

    def test_fig13_pooled_reduction_handles_zero_baseline(self):
        from repro.bench.experiments import Fig13Result

        result = Fig13Result(
            miss={
                "limited": {
                    "m": {
                        1: {"baseline": 0.0, "ws": 0.0},
                        2: {"baseline": 0.1, "ws": 0.05},
                    }
                }
            }
        )
        assert result.mean_reduction("m", "ws", counts=(1, 2)) == pytest.approx(0.5)
        assert result.reduction("limited", "m", 1, "ws") == 0.0

    def test_headline_workload_deterministic(self):
        a = headline_workload(duration_s=5.0, seed=4)
        b = headline_workload(duration_s=5.0, seed=4)
        assert len(a) == len(b)


class TestRenderTable:
    def test_alignment_and_note(self):
        text = render_table("T", ["a", "bb"], [[1, 2.5], ["x", 10_000.0]], note="n")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[-1] == "n"
        widths = {len(line) for line in lines[1:-1]}
        assert len(widths) == 1  # box edges aligned

    def test_float_formatting(self):
        text = render_table("T", ["v"], [[0.123456], [12345.678]])
        assert "0.123" in text
        assert "12,346" in text


class TestDegradation:
    def test_structure_and_determinism(self):
        from repro.bench.experiments import run_degradation

        kwargs = dict(
            duration_s=2.0,
            n_accelerators=2,
            fault_rates=(0.0, 2.0),
            schemes=("baseline", "ws+ds"),
        )
        first = run_degradation(**kwargs)
        second = run_degradation(**kwargs)
        assert first.failures == 0
        assert set(first.miss) == {"baseline", "ws+ds"}
        for scheme in first.miss:
            assert set(first.miss[scheme]) == {0.0, 2.0}
        assert first.miss == second.miss
        assert first.pnl == second.pnl
        assert "Degradation" in first.table()

    def test_zero_rate_plan_is_none(self):
        from repro.bench.experiments import degradation_plan

        assert degradation_plan(5.0, 4, 100, 0.0, seed=1) is None
        plan = degradation_plan(5.0, 4, 100, 2.0, seed=1)
        assert plan is not None and not plan.empty

    def test_pnl_proxy_counts(self):
        from repro.bench.experiments import pnl_proxy
        from repro.sim.metrics import RunResult

        result = RunResult(
            system="lighttrader",
            model="deeplob",
            n_queries=10,
            responded=8,
            completed_late=1,
            dropped=1,
            mean_latency_us=10.0,
            p50_latency_us=10.0,
            p99_latency_us=20.0,
            mean_batch_size=1.0,
            mean_power_w=5.0,
            peak_power_w=7.0,
            energy_j=1.0,
            duration_s=2.0,
        )
        assert pnl_proxy(result) == 8 * 1.0 - 2 * 0.5
