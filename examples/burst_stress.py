"""Burst stress test: how the proactive scheduler survives micro-bursts.

Builds a deliberately hostile workload (long 50k ticks/s micro-bursts on
a calm background), then compares the four scheduling schemes of the
paper's Fig. 13 on a power-limited 4-accelerator card, printing miss
rates, batch sizes and power draw.

Usage::

    python examples/burst_stress.py
"""

from repro.baselines import lighttrader_profile
from repro.bench import render_table
from repro.sim import Backtester, SimConfig, synthetic_workload
from repro.sim.workload import Regime, TrafficSpec

HOSTILE = TrafficSpec(
    calm=Regime("calm", rate_hz=200.0, mean_dwell_s=2.0),
    episodes=(
        Regime("active", rate_hz=7_600.0, mean_dwell_s=0.10),
        Regime("burst", rate_hz=50_000.0, mean_dwell_s=0.02),
    ),
    episode_weights=(0.5, 0.5),
)

SCHEMES = {
    "baseline": dict(workload_scheduling=False, dvfs_scheduling=False),
    "WS (Algorithm 1)": dict(workload_scheduling=True, dvfs_scheduling=False),
    "DS (Algorithm 2)": dict(workload_scheduling=False, dvfs_scheduling=True),
    "WS+DS": dict(workload_scheduling=True, dvfs_scheduling=True),
}


def main() -> None:
    workload = synthetic_workload(duration_s=60.0, spec=HOSTILE, seed=5)
    print(f"Hostile workload: {len(workload)} queries over 60 s")

    profile = lighttrader_profile()
    rows = []
    baseline_miss = None
    for label, flags in SCHEMES.items():
        config = SimConfig(
            model="deeplob",
            n_accelerators=4,
            power_condition="limited",
            **flags,
        )
        result = Backtester(workload, profile, config).run()
        if baseline_miss is None:
            baseline_miss = result.miss_rate
        reduction = (
            (baseline_miss - result.miss_rate) / baseline_miss if baseline_miss else 0.0
        )
        rows.append(
            [
                label,
                f"{result.miss_rate:.2%}",
                f"{reduction:+.0%}",
                f"{result.mean_batch_size:.2f}",
                f"{result.p99_latency_us:,.0f}",
                f"{result.mean_power_w:.2f}",
                f"{result.peak_power_w:.1f}",
            ]
        )
    print(
        render_table(
            "DeepLOB, 4 accelerators, limited power (20 W)",
            ["scheme", "miss", "Δ vs base", "batch", "p99 µs", "avg W", "peak W"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
