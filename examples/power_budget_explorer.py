"""Power budget exploration: response rate across the (budget, N) plane.

For a DeepLOB deployment, sweeps the accelerator count under both paper
power conditions and an intermediate budget, showing where extra silicon
stops paying for itself once the per-accelerator power share collapses —
the trade-off behind the paper's Fig. 12 and Table III.

Usage::

    python examples/power_budget_explorer.py
"""


from repro import paperdata
from repro.accelerator.power import DVFSTable, PowerModel, fit_activity_coefficients
from repro.baselines import lighttrader_profile
from repro.bench import render_table
from repro.sim import Backtester, SimConfig, synthetic_workload

COUNTS = (1, 2, 4, 8, 16)


def main() -> None:
    workload = synthetic_workload(duration_s=60.0, seed=11)
    profile = lighttrader_profile()
    print(f"Workload: {len(workload)} queries over 60 s; model: deeplob\n")

    # Static clock each share supports (the Table-III mechanism).
    activity = fit_activity_coefficients()["deeplob"]
    table = DVFSTable(cap_hz=paperdata.TABLE3_CONSERVATIVE_CAP_HZ)
    power_model = PowerModel()
    rows = []
    for condition, total_w in (("sufficient", 55.0), ("limited", 20.0)):
        clocks = []
        rates = []
        for n in COUNTS:
            point = power_model.select_max_frequency(table, activity, total_w / n)
            clocks.append(f"{point.freq_ghz:.1f}" if point else "-")
            result = Backtester(
                workload,
                profile,
                SimConfig(model="deeplob", n_accelerators=n, power_condition=condition),
            ).run()
            rates.append(f"{result.response_rate:.1%}")
        rows.append([condition, "clock (GHz)"] + clocks)
        rows.append([condition, "response"] + rates)
    print(
        render_table(
            "DeepLOB response rate and static clock vs accelerator count",
            ["condition", "metric"] + [f"N={n}" for n in COUNTS],
            rows,
            note="more accelerators -> lower per-accel clock; response saturates",
        )
    )

    print("\nWith the proactive scheduler (WS+DS), limited power:")
    rows = []
    for n in COUNTS:
        base = Backtester(
            workload,
            profile,
            SimConfig(model="deeplob", n_accelerators=n, power_condition="limited"),
        ).run()
        sched = Backtester(
            workload,
            profile,
            SimConfig(
                model="deeplob",
                n_accelerators=n,
                power_condition="limited",
                workload_scheduling=True,
                dvfs_scheduling=True,
            ),
        ).run()
        rows.append(
            [
                n,
                f"{base.miss_rate:.2%}",
                f"{sched.miss_rate:.2%}",
                f"{(base.miss_rate - sched.miss_rate) / base.miss_rate:+.0%}"
                if base.miss_rate
                else "-",
            ]
        )
    print(
        render_table(
            "Miss rate: baseline vs WS+DS (limited power)",
            ["N", "baseline", "ws+ds", "reduction"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
