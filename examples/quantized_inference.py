"""INT8 quantised inference: the latency-prioritised path of §III-C.

The accelerator's BF16 units keep full network accuracy; the INT8/INT4
SIMD paths trade precision for a 4x/8x op-rate "for the case that the
processing latency is prioritized over the accuracy".  This example
quantifies both sides of that trade on the functional models:

1. Prediction agreement between FP32, BF16, INT8 and INT4 inference.
2. The response-rate effect of the faster quantised datapath on a
   single-accelerator deployment (cycles scaled by the precision's op
   multiplier).

Usage::

    python examples/quantized_inference.py
"""

import dataclasses

import numpy as np

from repro.baselines import benchmark_costs, lighttrader_profile
from repro.bench import render_table
from repro.nn import Precision, build_model
from repro.sim import Backtester, SimConfig, synthetic_workload


def agreement(model, x, precision):
    """Fraction of argmax predictions matching the FP32 reference."""
    reference = model.forward(x).argmax(axis=-1)
    quantised = model.forward(x, precision=precision).argmax(axis=-1)
    return float((reference == quantised).mean())


def main() -> None:
    rng = np.random.default_rng(0)
    model = build_model("deeplob")
    x = rng.standard_normal((256, *model.input_shape)).astype(np.float32)

    print("=== 1. Prediction agreement vs FP32 (deeplob, 256 samples) ===")
    rows = []
    for precision in (Precision.BF16, Precision.INT8, Precision.INT4):
        rows.append(
            [
                precision.value,
                f"{precision.ops_multiplier}x",
                f"{agreement(model, x, precision):.1%}",
            ]
        )
    print(render_table("Quantised datapaths", ["precision", "op rate", "agreement"], rows))

    print("\n=== 2. System effect of the 4x INT8 path (deeplob, 1 accel) ===")
    workload = synthetic_workload(duration_s=60.0, seed=17)
    profile = lighttrader_profile()
    bf16_cost = benchmark_costs()["deeplob"]
    rows = []
    for label, multiplier in (("BF16", 1), ("INT8", 4), ("INT4", 8)):
        cost = dataclasses.replace(
            bf16_cost,
            name=f"deeplob_{label.lower()}",
            cycles_batch1=bf16_cost.cycles_batch1 / multiplier,
        )
        profile.register(cost)
        result = Backtester(
            workload, profile, SimConfig(model=cost.name, n_accelerators=1)
        ).run()
        rows.append(
            [
                label,
                f"{result.p50_latency_us:.0f}",
                f"{result.response_rate:.1%}",
                f"{result.mean_power_w:.2f}",
            ]
        )
    print(
        render_table(
            "DeepLOB on one accelerator, quantised datapath",
            ["precision", "p50 t2t (µs)", "response", "avg W"],
            rows,
            note="BF16 keeps accuracy; INT paths buy response rate with precision",
        )
    )


if __name__ == "__main__":
    main()
