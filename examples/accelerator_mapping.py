"""Compile DNNs onto the CGRA and inspect the mapping.

Walks the full compiler pipeline for each benchmark model — dataflow
graph, hyperblock partition, grid mapping, instruction streams — prints
the per-hyperblock report, and validates the functional path by running
a convolution through FMT lowering + the tile-level grid interpreter
against the numpy reference.

Usage::

    python examples/accelerator_mapping.py
"""

import numpy as np

from repro.accelerator import CGRAInterpreter, DEFAULT_CONFIG
from repro.compiler import compile_model
from repro.nn import benchmark_models
from repro.nn.layers import Conv2D


def main() -> None:
    config = DEFAULT_CONFIG
    print(
        f"Target: {config.grid_rows}x{config.grid_cols} CGRA "
        f"({config.n_epes} EPEs), {config.peak_tflops():.1f} BF16 TFLOPS "
        f"@ {config.nominal_freq_hz / 1e9:.1f} GHz, "
        f"{config.dmem_bytes // 1024 // 1024} MiB DMEM\n"
    )

    for name, model in benchmark_models().items():
        program = compile_model(model, config)
        print(program.summary())
        print(
            f"  -> batch-1 latency at 2.0 GHz: "
            f"{program.latency_ns(2.0e9) / 1000:.1f} µs (compiled estimate); "
            f"IMEM footprint {program.imem_bytes():,} B\n"
        )

    print("Functional validation: conv via FMT lowering + grid matmul")
    rng = np.random.default_rng(0)
    layer = Conv2D(8, (3, 3), padding="valid")
    layer.build((4, 12, 10), np.random.default_rng(1))
    layer.params["bias"][:] = 0.0
    x = rng.standard_normal((1, 4, 12, 10)).astype(np.float32)
    reference = layer.forward(x)[0]

    interpreter = CGRAInterpreter(config)
    accelerated = interpreter.conv2d_via_lowering(x[0], layer.params["weight"])
    error = np.abs(accelerated - reference).max()
    print(
        f"  max |grid - numpy| = {error:.2e} over {reference.size} outputs; "
        f"{interpreter.stats.mac_instructions:,} MAC instructions on "
        f"{interpreter.stats.active_pes} PEs"
    )
    assert error < 1e-3, "grid execution diverged from the reference"
    print("  OK - tile-level execution matches the numpy golden model")


if __name__ == "__main__":
    main()
