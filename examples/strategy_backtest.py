"""End-to-end AI trading strategy: train, predict, trade, account P&L.

The full functional path the LightTrader hardware accelerates:

1. Generate a training session and fit a movement classifier on
   DeepLOB-style labels (the functional stand-in for a trained DNN —
   system metrics in the paper are weight-independent, but this example
   shows the strategy loop end to end).
2. Replay a fresh session tick by tick: offload engine builds the input
   map, the classifier predicts, the trading engine risk-checks and
   emits iLink3 orders, fills are assumed at the touch and accounted.
3. Report accuracy vs the majority-class baseline and the P&L summary.

Usage::

    python examples/strategy_backtest.py
"""

import numpy as np

from repro.lob import Side
from repro.market import generate_session
from repro.pipeline import RiskLimits, TradingEngine
from repro.protocol import ILink3Order
from repro.strategy import PnLTracker, SoftmaxClassifier, build_dataset

WINDOW = 50
HORIZON = 20


def main() -> None:
    print("=== 1. Train a movement classifier ===")
    train_tape = generate_session(duration_s=25.0, seed=7)
    dataset = build_dataset(train_tape, window=WINDOW, horizon=HORIZON)
    train, test = dataset.split(0.7)
    print(
        f"{len(dataset)} samples, class balance (down/flat/up): "
        f"{np.round(dataset.class_balance(), 2)}"
    )
    classifier = SoftmaxClassifier(seed=0)
    report = classifier.fit(train, epochs=40, learning_rate=0.1, test=test)
    print(
        f"train acc {report.train_accuracy:.1%}, test acc {report.test_accuracy:.1%} "
        f"(majority-class baseline {report.baseline_accuracy:.1%})"
    )

    print("\n=== 2. Trade a fresh session ===")
    live_tape = generate_session(duration_s=25.0, seed=99)
    live = build_dataset(live_tape, window=WINDOW, horizon=HORIZON)
    probabilities = classifier.predict_proba(live.features)

    engine = TradingEngine(limits=RiskLimits(min_confidence=0.50, max_position=10))
    pnl = PnLTracker()  # pessimistic: marketable IOC fills at the touch
    pnl_mid = PnLTracker(fee_per_contract=0.0)  # optimistic: fills at mid
    orders = 0
    for probs, tick_index in zip(probabilities, live.indices):
        tick = live_tape[int(tick_index)]
        decision = engine.on_inference(probs, tick.snapshot, tick.timestamp)
        if not decision.acted:
            continue
        orders += 1
        order = ILink3Order.decode(decision.encoded)
        pnl.on_fill(order.side, order.price, order.order_qty)
        pnl_mid.on_fill(order.side, round(tick.mid_price), order.order_qty)
        pnl.mark(tick.mid_price)

    final_mid = next(
        tick.mid_price for tick in reversed(live_tape) if tick.mid_price is not None
    )
    # Flatten any residual inventory at the final mid.
    for tracker in (pnl, pnl_mid):
        if tracker.position != 0:
            side = Side.ASK if tracker.position > 0 else Side.BID
            tracker.on_fill(side, round(final_mid), abs(tracker.position))

    print(f"orders sent: {orders}")
    print(
        "risk suppressions:",
        f"stationary={engine.counters.stationary}",
        f"low_confidence={engine.counters.low_confidence}",
        f"position_limit={engine.counters.position_limit}",
    )
    print("\n=== 3. P&L report ===")
    print("fills at the touch (pays the spread + fees):")
    print("  " + pnl.report(final_mid).describe())
    print("fills at the mid (execution-cost-free counterfactual):")
    print("  " + pnl_mid.report(final_mid).describe())
    print(
        "\nThe gap between the two lines is execution cost: the classifier's"
        "\nedge is real (accuracy well above the class baseline) but crossing"
        "\nthe spread on every signal consumes it - which is precisely why"
        "\nHFT systems fight for microseconds of tick-to-trade latency."
    )


if __name__ == "__main__":
    main()
