"""Quickstart: simulate a market session and back-test LightTrader on it.

Runs in under a minute:

1. Generate a synthetic CME-like session (agent-based order flow through
   a real matching engine, Hawkes-bursty arrivals).
2. Derive a back-test workload (tick timestamps + opportunity deadlines).
3. Replay it through the LightTrader system model (single accelerator)
   and through the GPU-based and FPGA-based baselines.
4. Replay with the proactive scheduler (WS+DS) enabled.
5. Re-run with telemetry enabled and render the tick-to-trade breakdown
   and miss-rate attribution from the JSONL trace.

Usage::

    python examples/quickstart.py
"""

import tempfile
from pathlib import Path

from repro import configure_logging
from repro.baselines import fpga_profile, gpu_profile, lighttrader_profile
from repro.market import describe, generate_session, traffic_stats
from repro.sim import Backtester, OpportunityDeadline, QueryWorkload, SimConfig
from repro.telemetry import Telemetry, TraceWriter
from repro.telemetry.report import render_report

log = configure_logging()


def main() -> None:
    log.info("=== 1. Synthetic market session ===")
    tape = generate_session(duration_s=20.0, seed=42)
    log.info("Recorded %d ticks over %.1f s", len(tape), tape.duration_ns / 1e9)
    log.info("%s", describe(traffic_stats(tape.timestamps)))
    mids = tape.mid_prices()
    log.info(
        "Mid price: start %.2f, end %.2f index points", mids[0] / 4, mids[-1] / 4
    )

    log.info("=== 2. Back-test workload ===")
    workload = QueryWorkload.from_tape(tape, OpportunityDeadline())
    log.info("%d queries, %d scored", len(workload), workload.scored_count)

    log.info("=== 3. Replay through the three systems ===")
    profiles = {
        "LightTrader (1 accel)": lighttrader_profile(),
        "GPU-based (V100)": gpu_profile(),
        "FPGA-based (U250)": fpga_profile(),
    }
    for label, profile in profiles.items():
        result = Backtester(
            workload, profile, SimConfig(model="deeplob", n_accelerators=1)
        ).run()
        log.info("%-24s %s", label, result.describe())

    log.info("=== 4. LightTrader with the proactive scheduler ===")
    ws_ds = SimConfig(
        model="deeplob",
        n_accelerators=1,
        workload_scheduling=True,
        dvfs_scheduling=True,
    )
    result = Backtester(workload, lighttrader_profile(), ws_ds).run()
    log.info("%-24s %s", "LightTrader (WS+DS)", result.describe())

    log.info("=== 5. Same run, traced: where does tick-to-trade go? ===")
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "quickstart-ws_ds.jsonl"
        with Telemetry(writer=TraceWriter(trace_path)) as telemetry:
            Backtester(
                workload, lighttrader_profile(), ws_ds, telemetry=telemetry
            ).run()
        print(render_report(trace_path))


if __name__ == "__main__":
    main()
