"""Quickstart: simulate a market session and back-test LightTrader on it.

Runs in under a minute:

1. Generate a synthetic CME-like session (agent-based order flow through
   a real matching engine, Hawkes-bursty arrivals).
2. Derive a back-test workload (tick timestamps + opportunity deadlines).
3. Replay it through the LightTrader system model (single accelerator)
   and through the GPU-based and FPGA-based baselines.
4. Print tick-to-trade and response-rate comparisons.

Usage::

    python examples/quickstart.py
"""

from repro.baselines import fpga_profile, gpu_profile, lighttrader_profile
from repro.market import describe, generate_session, traffic_stats
from repro.sim import Backtester, OpportunityDeadline, QueryWorkload, SimConfig


def main() -> None:
    print("=== 1. Synthetic market session ===")
    tape = generate_session(duration_s=20.0, seed=42)
    print(f"Recorded {len(tape)} ticks over {tape.duration_ns / 1e9:.1f} s")
    print(describe(traffic_stats(tape.timestamps)))
    mids = tape.mid_prices()
    print(f"Mid price: start {mids[0] / 4:.2f}, end {mids[-1] / 4:.2f} index points")

    print("\n=== 2. Back-test workload ===")
    workload = QueryWorkload.from_tape(tape, OpportunityDeadline())
    print(f"{len(workload)} queries, {workload.scored_count} scored")

    print("\n=== 3. Replay through the three systems ===")
    profiles = {
        "LightTrader (1 accel)": lighttrader_profile(),
        "GPU-based (V100)": gpu_profile(),
        "FPGA-based (U250)": fpga_profile(),
    }
    for label, profile in profiles.items():
        result = Backtester(
            workload, profile, SimConfig(model="deeplob", n_accelerators=1)
        ).run()
        print(f"{label:24s} {result.describe()}")

    print("\n=== 4. LightTrader with the proactive scheduler ===")
    result = Backtester(
        workload,
        lighttrader_profile(),
        SimConfig(
            model="deeplob",
            n_accelerators=1,
            workload_scheduling=True,
            dvfs_scheduling=True,
        ),
    ).run()
    print(f"{'LightTrader (WS+DS)':24s} {result.describe()}")


if __name__ == "__main__":
    main()
